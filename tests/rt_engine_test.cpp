// Threaded message-passing runtime: the same Protocol objects as the
// simulator, in wall-clock time. Keep rank counts small — the suite shares
// one CPU with everything else.

#include <gtest/gtest.h>

#include <memory>

#include "protocol/ack_tree.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/harness.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

std::vector<char> no_failures(Rank procs) {
  return std::vector<char>(static_cast<std::size_t>(procs), 0);
}

proto::CorrectionConfig opportunistic(int distance) {
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = distance;
  return config;
}

TEST(RtEngine, FaultFreeBroadcastColorsEveryone) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast protocol(tree, config);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_EQ(result.total_messages, procs - 1);
  EXPECT_GT(result.completion_ns, 0);
}

TEST(RtEngine, FaultAgnosticTreeLosesSubtreesCorrectionRecoversThem) {
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[1] = 1;  // rank 1 roots a large subtree
  Engine engine(procs, failed);

  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast bare(tree, none);
  const EpochResult bare_result = engine.run_epoch(bare, std::chrono::seconds(20));
  EXPECT_GT(bare_result.uncolored_live, 0);  // descendants of 1 missed

  proto::CorrectedTreeBroadcast corrected(tree, opportunistic(4));
  const EpochResult corrected_result = engine.run_epoch(corrected, std::chrono::seconds(20));
  EXPECT_FALSE(corrected_result.timed_out);
  EXPECT_EQ(corrected_result.uncolored_live, 0);
}

TEST(RtEngine, CheckedCorrectionWorksOnTheRuntime) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[2] = failed[9] = 1;
  Engine engine(procs, failed);
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kOverlapped;
  proto::CorrectedTreeBroadcast protocol(tree, config);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
}

TEST(RtEngine, EpochsAreIsolated) {
  // Repeated epochs must not leak messages or coloring across iterations.
  const Rank procs = 12;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  for (int epoch = 0; epoch < 5; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(tree, opportunistic(2));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
    EXPECT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
  }
}

TEST(RtEngine, RoundBasedGossipRunsOnRuntime) {
  const Rank procs = 16;
  Engine engine(procs, no_failures(procs));
  proto::GossipConfig config;
  config.budget = proto::GossipConfig::Budget::kRounds;
  config.gossip_rounds = 6;
  config.correction = opportunistic(4);
  config.seed = 5;
  proto::CorrectedGossipBroadcast protocol(procs, config);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
}

TEST(RtEngine, TimesOutWhenProtocolCannotComplete) {
  // A bare tree with a failed inner node leaves ranks uncolored forever;
  // the engine must report a timeout instead of hanging.
  const Rank procs = 8;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[1] = 1;
  Engine engine(procs, failed);
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast protocol(tree, none);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::milliseconds(300));
  EXPECT_TRUE(result.timed_out);
}

TEST(RtEngine, ValidatesConstruction) {
  EXPECT_THROW(Engine(4, std::vector<char>{1, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(Engine(4, std::vector<char>{0, 0}), std::invalid_argument);
}

TEST(RtHarness, MeasuresIterations) {
  const Rank procs = 12;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  const ProtocolFactory factory = [&]() -> std::unique_ptr<sim::Protocol> {
    return std::make_unique<proto::CorrectedTreeBroadcast>(tree, opportunistic(2));
  };
  HarnessOptions options;
  options.warmup = 1;
  options.iterations = 6;
  const HarnessResult result = measure_broadcast(engine, factory, options);
  EXPECT_EQ(result.iterations, 6);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  EXPECT_EQ(result.latency_us.count(), 6u);
  EXPECT_GT(result.median_us(), 0.0);
  // Opportunistic d=2 both directions: tree + at most 4 correction messages
  // per process.
  EXPECT_LE(result.messages_per_process.max(), 5.0);
}

TEST(RtHarness, AllTimeoutRunReportsZeroPercentilesNotNaN) {
  // Every epoch times out: a failed inner node, no correction, and a tiny
  // timeout. The percentile accessors share one empty-sample policy — 0.0,
  // never NaN and never a throwing Samples::percentile() call — so reports
  // of fully-degraded runs stay finite next to the timeout counters.
  const Rank procs = 8;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[1] = 1;
  Engine engine(procs, failed);
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  const ProtocolFactory factory = [&]() -> std::unique_ptr<sim::Protocol> {
    return std::make_unique<proto::CorrectedTreeBroadcast>(tree, none);
  };
  HarnessOptions options;
  options.warmup = 0;
  options.iterations = 3;
  options.epoch_timeout = std::chrono::milliseconds(50);
  const HarnessResult result = measure_broadcast(engine, factory, options);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_EQ(result.timeouts, 3);
  EXPECT_TRUE(result.latency_us.empty());
  EXPECT_EQ(result.p50_us(), 0.0);
  EXPECT_EQ(result.p95_us(), 0.0);
  EXPECT_EQ(result.p99_us(), 0.0);
  EXPECT_EQ(result.p999_us(), 0.0);
  EXPECT_EQ(result.median_us(), 0.0);
  // The kept first epoch is the degradation report for the whole run.
  EXPECT_TRUE(result.first.timed_out);
  EXPECT_GT(result.first.uncolored_live, 0);
}

// --- Sharded scheduler: shard-boundary suite -------------------------------
// The sharded engine carves [0, P) into contiguous slices of ceil(P/N)
// ranks; these tests pin the boundary cases (uneven split, dead slices,
// degenerate single shard, all-cross-shard traffic) and the A/B contract
// against the legacy thread-per-rank executor.

TEST(RtSharded, UnevenRankSplitColorsEveryone) {
  // P = 17 over 3 workers: slices of 6, 6 and 5 ranks.
  const Rank procs = 17;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 3;
  Engine engine(procs, no_failures(procs), options);
  EXPECT_EQ(engine.worker_threads(), 3u);
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast protocol(tree, none);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_EQ(result.total_messages, procs - 1);
  EXPECT_EQ(result.rank_completion_ns.size(), static_cast<std::size_t>(procs));
}

TEST(RtSharded, AllFailedShardIsRecoveredByCorrection) {
  // Ranks 4..7 — worker 1's whole slice — are dead; their live tree
  // descendants must be colored via checked correction anyway, and the
  // engine must not wait on the empty shard.
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  for (Rank r = 4; r < 8; ++r) failed[static_cast<std::size_t>(r)] = 1;
  EngineOptions options;
  options.workers = 4;
  Engine engine(procs, failed, options);
  EXPECT_EQ(engine.live_count(), 12);
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kOverlapped;
  proto::CorrectedTreeBroadcast protocol(tree, config);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
}

TEST(RtSharded, MoreWorkersThanLiveRanksWithWholeShardsFailed) {
  // Failure-flag audit (the crashed-rank barrier hazard): ranks marked
  // failed at construction must not hold an epoch-barrier slot or a
  // completion-countdown unit hostage. P = 12 over 6 workers (slices of 2)
  // with ranks 2..11 failed leaves five entirely-dead shards and more
  // worker threads than live ranks; every epoch must still terminate with
  // both survivors colored.
  const Rank procs = 12;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  for (Rank r = 2; r < procs; ++r) failed[static_cast<std::size_t>(r)] = 1;
  EngineOptions options;
  options.workers = 6;
  Engine engine(procs, failed, options);
  EXPECT_EQ(engine.live_count(), 2);
  EXPECT_EQ(engine.worker_threads(), 6u);
  for (int epoch = 0; epoch < 4; ++epoch) {
    proto::CorrectionConfig config;
    config.kind = proto::CorrectionKind::kChecked;
    config.start = proto::CorrectionStart::kOverlapped;
    proto::CorrectedTreeBroadcast protocol(tree, config);
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    EXPECT_EQ(result.rank_completion_ns.size(), 2u) << "epoch " << epoch;
  }
}

TEST(RtSharded, SingleLiveRankAmongManyWorkers) {
  // Degenerate extreme of the same audit: only the root survives, one
  // worker per rank. Seven of the eight shards own nothing but corpses.
  const Rank procs = 8;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  for (Rank r = 1; r < procs; ++r) failed[static_cast<std::size_t>(r)] = 1;
  EngineOptions options;
  options.workers = 8;
  Engine engine(procs, failed, options);
  EXPECT_EQ(engine.live_count(), 1);
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast protocol(tree, none);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  // The root's sends to its (dead) children are still accounted: sends
  // complete locally, delivery is what vanishes.
  EXPECT_EQ(result.total_messages,
            static_cast<std::int64_t>(tree.children(0).size()));
}

TEST(RtSharded, SingleShardDegenerateCase) {
  // One worker owns everything: the scheduler reduces to a sequential
  // event loop, with no cross-shard inbox traffic at all.
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[5] = failed[17] = 1;
  EngineOptions options;
  options.workers = 1;
  Engine engine(procs, failed, options);
  EXPECT_EQ(engine.worker_threads(), 1u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    proto::CorrectionConfig config;
    config.kind = proto::CorrectionKind::kChecked;
    config.start = proto::CorrectionStart::kOverlapped;
    proto::CorrectedTreeBroadcast protocol(tree, config);
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
    EXPECT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
  }
}

TEST(RtSharded, CrossShardOnlyTree) {
  // One rank per shard: every tree edge crosses shards, so the whole
  // broadcast flows through the MPSC inboxes.
  const Rank procs = 8;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = static_cast<int>(procs);
  Engine engine(procs, no_failures(procs), options);
  EXPECT_EQ(engine.worker_threads(), static_cast<std::size_t>(procs));
  proto::CorrectionConfig none;
  none.kind = proto::CorrectionKind::kNone;
  proto::CorrectedTreeBroadcast protocol(tree, none);
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_EQ(result.total_messages, procs - 1);
}

TEST(RtSharded, WorkerCountClampsToRanks) {
  EngineOptions options;
  options.workers = 64;
  Engine engine(4, no_failures(4), options);
  EXPECT_LE(engine.worker_threads(), 4u);
}

TEST(RtSharded, TinyInboxBackpressureStillDelivers) {
  // Capacity 2 forces partial batch flushes and staged retries; ordering
  // and completeness must survive the backpressure.
  const Rank procs = 32;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.inbox_capacity = 2;
  Engine engine(procs, no_failures(procs), options);
  proto::CorrectedTreeBroadcast protocol(tree, opportunistic(2));
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
}

TEST(RtSharded, MatchesThreadPerRankOutcomes) {
  // A/B: identical scenario on both executors must produce the identical
  // protocol outcome (everyone colored; same message count for the
  // deterministic fault-free tree).
  const Rank procs = 48;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  std::vector<char> failed = no_failures(procs);
  failed[3] = failed[21] = 1;

  auto run = [&](Threading threading, const std::vector<char>& faults,
                 proto::CorrectionKind kind) {
    EngineOptions options;
    options.threading = threading;
    options.workers = 4;
    Engine engine(procs, faults, options);
    proto::CorrectionConfig config;
    config.kind = kind;
    config.start = proto::CorrectionStart::kOverlapped;
    proto::CorrectedTreeBroadcast protocol(tree, config);
    return engine.run_epoch(protocol, std::chrono::seconds(20));
  };

  const EpochResult sharded_clean =
      run(Threading::kSharded, no_failures(procs), proto::CorrectionKind::kNone);
  const EpochResult legacy_clean =
      run(Threading::kThreadPerRank, no_failures(procs), proto::CorrectionKind::kNone);
  EXPECT_EQ(sharded_clean.uncolored_live, 0);
  EXPECT_EQ(legacy_clean.uncolored_live, 0);
  EXPECT_EQ(sharded_clean.total_messages, legacy_clean.total_messages);

  const EpochResult sharded_faulty =
      run(Threading::kSharded, failed, proto::CorrectionKind::kChecked);
  const EpochResult legacy_faulty =
      run(Threading::kThreadPerRank, failed, proto::CorrectionKind::kChecked);
  EXPECT_FALSE(sharded_faulty.timed_out);
  EXPECT_FALSE(legacy_faulty.timed_out);
  EXPECT_EQ(sharded_faulty.uncolored_live, 0);
  EXPECT_EQ(legacy_faulty.uncolored_live, 0);
}

TEST(RtSharded, PrototypeScaleEpochCompletesQuickly) {
  // A taste of the §4.4 scale on the CI budget: 4 Ki ranks through the
  // default sharded engine must complete an epoch well inside the timeout.
  const Rank procs = 4096;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  Engine engine(procs, no_failures(procs));
  proto::CorrectedTreeBroadcast protocol(tree, opportunistic(4));
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(20));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
}

}  // namespace
}  // namespace ct::rt

// NOTE: appended suite — collectives and calibration on the runtime.
#include "protocol/allreduce.hpp"
#include "rt/logp_fit.hpp"

namespace ct::rt {
namespace {

TEST(RtCollectives, AllReduceDeliversMaxToAllLiveRanks) {
  const Rank procs = 16;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  // The reduce phase schedules timers from the LogP timetable; on the
  // runtime a "step" is a nanosecond, so scale the model so deadlines give
  // threads real time (1 step = 50 us).
  sim::LogP params{2 * 50'000, 50'000, 50'000, procs};
  std::vector<char> failed = no_failures(procs);
  failed[3] = 1;
  Engine engine(procs, failed);

  std::vector<std::int64_t> values;
  std::int64_t live_max = 0;
  for (Rank r = 0; r < procs; ++r) {
    values.push_back(r * 7 % 23);
    if (!failed[static_cast<std::size_t>(r)]) live_max = std::max(live_max, values.back());
  }
  proto::AllReduceConfig config;
  config.reduce.distance = 2;
  config.correction = opportunistic(4);
  proto::CorrectedAllReduce allreduce(tree, params, values, config);
  const EpochResult result = engine.run_epoch(allreduce, std::chrono::seconds(30));
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_TRUE(allreduce.reduction_done());
  EXPECT_EQ(allreduce.result(), live_max);
}

TEST(RtLogPFit, ProducesPlausibleParameters) {
  Engine engine(2, no_failures(2));
  const LogPFit fit = fit_logp(engine, /*round_trips=*/50, /*burst_size=*/32);
  EXPECT_GT(fit.rtt_ns, 0.0);
  EXPECT_GE(fit.o_ns, 0.0);
  EXPECT_GE(fit.L_ns, 0.0);
  // The model identity RTT/2 = 2o + L holds by construction of the fit.
  EXPECT_NEAR(fit.rtt_ns / 2.0, 2.0 * fit.o_ns + fit.L_ns, fit.rtt_ns);
}

TEST(RtLogPFit, Validation) {
  Engine engine(2, no_failures(2));
  EXPECT_THROW(fit_logp(engine, 0, 32), std::invalid_argument);
  EXPECT_THROW(fit_logp(engine, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ct::rt

// Baseline protocols (ack-tree, Corrected Gossip), gossip tuning, the
// corrected-reduce extension, and the experiment runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "experiment/runner.hpp"
#include "protocol/ack_tree.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/gossip_tuning.hpp"
#include "protocol/reduce.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct::proto {
namespace {

using topo::Rank;

// --- Ack-tree baseline -----------------------------------------------------------

TEST(AckTree, FaultFreeDoublesTraffic) {
  // §5: payload down + ack up = 2 messages per non-root process and roughly
  // double the latency of the bare tree.
  const Rank procs = 256;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  AckTreeBroadcast protocol(tree);
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(protocol);
  EXPECT_TRUE(protocol.root_acknowledged());
  EXPECT_TRUE(result.fully_colored());
  EXPECT_EQ(result.total_messages, 2 * (procs - 1));
  const sim::Time dissemination = fault_free_dissemination_time(tree, params);
  EXPECT_GE(result.quiescence_latency, 2 * dissemination - params.message_cost());
}

TEST(AckTree, HangsOnFailureLikeFaultAgnosticMpi) {
  // A failed inner node never acks; the root never completes — exactly the
  // "hang or crash" behaviour of fault-agnostic MPI collectives (§1).
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  AckTreeBroadcast protocol(tree);
  sim::Simulator simulator(sim::LogP{2, 1, 1, procs},
                           sim::FaultSet::from_list(procs, {1}));
  const sim::RunResult result = simulator.run(protocol);
  EXPECT_FALSE(protocol.root_acknowledged());
  EXPECT_FALSE(result.fully_colored());
}

TEST(AckTree, SingleProcessTriviallyAcknowledged) {
  const topo::Tree tree = topo::make_binomial_interleaved(1);
  AckTreeBroadcast protocol(tree);
  sim::Simulator simulator(sim::LogP{2, 1, 1, 1}, sim::FaultSet::none(1));
  simulator.run(protocol);
  EXPECT_TRUE(protocol.root_acknowledged());
}

// --- Corrected Gossip --------------------------------------------------------------

GossipConfig gossip_config(sim::Time gossip_time, CorrectionKind kind) {
  GossipConfig config;
  config.budget = GossipConfig::Budget::kTime;
  config.gossip_time = gossip_time;
  config.correction.kind = kind;
  config.correction.start = CorrectionStart::kSynchronized;
  config.correction.sync_time = gossip_time;
  config.seed = 1234;
  return config;
}

TEST(Gossip, ColoringGrowsWithGossipTime) {
  const Rank procs = 256;
  const sim::LogP params{2, 1, 1, procs};
  Rank colored_short = 0;
  Rank colored_long = 0;
  for (auto [time, colored] :
       {std::pair<sim::Time, Rank*>{8, &colored_short}, {60, &colored_long}}) {
    CorrectedGossipBroadcast protocol(procs, gossip_config(time, CorrectionKind::kNone));
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(protocol);
    *colored = procs - result.uncolored_live;
  }
  EXPECT_LT(colored_short, colored_long);
  EXPECT_GT(colored_short, 1);  // the root did infect someone
}

TEST(Gossip, CheckedCorrectionCompletesColoring) {
  const Rank procs = 256;
  const sim::LogP params{2, 1, 1, procs};
  // Deliberately short gossip: correction must finish the job.
  CorrectedGossipBroadcast protocol(procs, gossip_config(20, CorrectionKind::kChecked));
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(protocol);
  EXPECT_TRUE(result.fully_colored());
  ASSERT_TRUE(result.has_dissemination_snapshot);
  EXPECT_EQ(result.correction_start, 20);
}

TEST(Gossip, SurvivesHeavyFaultsWithChecked) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Rank procs = 256;
    support::Xoshiro256ss rng(seed);
    GossipConfig config = gossip_config(48, CorrectionKind::kChecked);
    config.seed = seed;
    CorrectedGossipBroadcast protocol(procs, config);
    sim::Simulator simulator(sim::LogP{2, 1, 1, procs},
                             sim::FaultSet::random_fraction(procs, 0.10, rng));
    const sim::RunResult result = simulator.run(protocol);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

TEST(Gossip, DeterministicGivenSeed) {
  const Rank procs = 128;
  auto run = [&](std::uint64_t seed) {
    GossipConfig config = gossip_config(30, CorrectionKind::kChecked);
    config.seed = seed;
    CorrectedGossipBroadcast protocol(procs, config);
    sim::Simulator simulator(sim::LogP{2, 1, 1, procs}, sim::FaultSet::none(procs));
    return simulator.run(protocol);
  };
  const sim::RunResult a = run(5);
  const sim::RunResult b = run(5);
  const sim::RunResult c = run(6);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.quiescence_latency, b.quiescence_latency);
  // Different stream, almost surely different traffic pattern.
  EXPECT_NE(a.total_messages, c.total_messages);
}

TEST(Gossip, RoundBasedBudgetTerminates) {
  const Rank procs = 128;
  GossipConfig config;
  config.budget = GossipConfig::Budget::kRounds;
  config.gossip_rounds = 10;
  config.correction.kind = CorrectionKind::kOptimizedOpportunistic;
  config.correction.start = CorrectionStart::kOverlapped;
  config.correction.distance = 4;
  config.seed = 77;
  CorrectedGossipBroadcast protocol(procs, config);
  sim::Simulator simulator(sim::LogP{2, 1, 1, procs}, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(protocol);
  EXPECT_TRUE(result.fully_colored());
}

TEST(Gossip, ValidatesConfig) {
  EXPECT_THROW(CorrectedGossipBroadcast(8, GossipConfig{}), std::invalid_argument);
  GossipConfig overlapped = gossip_config(10, CorrectionKind::kChecked);
  overlapped.correction.start = CorrectionStart::kOverlapped;
  EXPECT_THROW(CorrectedGossipBroadcast(8, overlapped), std::invalid_argument);
}

TEST(Gossip, MoreMessagesThanCorrectedTree) {
  // The paper's headline: "up to six times fewer messages sent in
  // comparison to existing schemes" (Fig. 6). At equal coloring success,
  // latency-tuned Corrected Gossip needs a multiple of the messages of a
  // corrected tree with opportunistic(d=1) correction (~8 vs ~3 per process
  // at this scale; the factor grows towards 6 at the paper's 64 Ki).
  const Rank procs = 512;
  const sim::LogP params{2, 1, 1, procs};

  CorrectionConfig checked;
  checked.kind = CorrectionKind::kChecked;
  const GossipTuneResult tuned = tune_gossip_for_latency(params, checked, 5, 42);
  CorrectedGossipBroadcast gossip(
      procs, gossip_config(tuned.gossip_time, CorrectionKind::kChecked));
  sim::Simulator gossip_sim(params, sim::FaultSet::none(procs));
  const sim::RunResult gossip_result = gossip_sim.run(gossip);

  exp::Scenario tree;
  tree.params = params;
  tree.tree = topo::parse_tree_spec("binomial");
  tree.correction.kind = CorrectionKind::kOptimizedOpportunistic;
  tree.correction.start = CorrectionStart::kOverlapped;
  tree.correction.distance = 1;
  const sim::RunResult tree_result = exp::run_once(tree, 1);

  EXPECT_TRUE(gossip_result.fully_colored());
  EXPECT_TRUE(tree_result.fully_colored());
  EXPECT_GT(gossip_result.total_messages, 2 * tree_result.total_messages);
}

// --- Gossip tuning -----------------------------------------------------------------

TEST(GossipTuning, ColoringTimeIsMinimal) {
  const sim::LogP params{2, 1, 1, 128};
  CorrectionConfig opportunistic;
  opportunistic.kind = CorrectionKind::kOptimizedOpportunistic;
  opportunistic.distance = 4;
  const GossipTuneResult tuned = tune_gossip_for_coloring(params, opportunistic, 5, 9);
  EXPECT_GT(tuned.gossip_time, 0);
  // One step shorter must fail to color somewhere within the same seeds.
  bool shorter_fails = false;
  for (std::size_t rep = 0; rep < 5; ++rep) {
    GossipConfig config;
    config.budget = GossipConfig::Budget::kTime;
    config.gossip_time = tuned.gossip_time - params.o;
    config.correction = opportunistic;
    config.correction.start = CorrectionStart::kSynchronized;
    config.correction.sync_time = config.gossip_time;
    config.seed = support::derive_seed(9, rep);
    CorrectedGossipBroadcast protocol(params.P, config);
    sim::Simulator simulator(params, sim::FaultSet::none(params.P));
    if (!simulator.run(protocol).fully_colored()) shorter_fails = true;
  }
  EXPECT_TRUE(shorter_fails);
}

TEST(GossipTuning, LatencyTuningBeatsExtremes) {
  const sim::LogP params{2, 1, 1, 128};
  CorrectionConfig checked;
  checked.kind = CorrectionKind::kChecked;
  const GossipTuneResult tuned = tune_gossip_for_latency(params, checked, 5, 11);
  EXPECT_GT(tuned.gossip_time, 0);
  EXPECT_GT(tuned.mean_quiescence, 0.0);
}

// --- Corrected reduce ----------------------------------------------------------------

TEST(Reduce, FaultFreeComputesMax) {
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  support::Xoshiro256ss rng(21);
  std::vector<std::int64_t> values;
  std::int64_t expected = 0;
  for (Rank r = 0; r < procs; ++r) {
    values.push_back(static_cast<std::int64_t>(rng.below(1'000'000)));
    expected = std::max(expected, values.back());
  }
  CorrectedReduce protocol(tree, params, values, ReduceConfig{.distance = 1});
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  simulator.run(protocol);
  EXPECT_TRUE(protocol.root_done());
  EXPECT_EQ(protocol.result(), expected);
}

TEST(Reduce, SurvivesFailuresViaRingReplicas) {
  // Kill random non-roots; the max over LIVE contributions must reach the
  // root whenever each live rank has a live replica holder with an intact
  // tree path (checked explicitly below, so the assertion is exact).
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const int distance = 2;

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    support::Xoshiro256ss rng(seed);
    const sim::FaultSet faults = sim::FaultSet::random_count(procs, 6, rng);

    std::vector<std::int64_t> values;
    for (Rank r = 0; r < procs; ++r) {
      values.push_back(static_cast<std::int64_t>(rng.below(1'000'000)));
    }

    auto path_alive = [&](Rank r) {
      for (Rank cur = r; cur != 0; cur = tree.parent(cur)) {
        if (faults.failed_from_start(cur)) return false;
      }
      return true;
    };
    // A live rank's value reaches the root iff some replica holder within
    // `distance` to the right (or itself) is live with an all-live path.
    std::int64_t reachable_max = values[0];
    bool all_reachable = true;
    for (Rank r = 1; r < procs; ++r) {
      if (faults.failed_from_start(r)) continue;
      bool reachable = false;
      for (int d = 0; d <= distance && !reachable; ++d) {
        const Rank holder = static_cast<Rank>((r + d) % procs);
        if (!faults.failed_from_start(holder) && path_alive(holder)) reachable = true;
      }
      if (reachable) {
        reachable_max = std::max(reachable_max, values[static_cast<std::size_t>(r)]);
      } else {
        all_reachable = false;
      }
    }

    CorrectedReduce protocol(tree, params, values, ReduceConfig{.distance = distance});
    sim::Simulator simulator(params, faults);
    simulator.run(protocol);
    EXPECT_TRUE(protocol.root_done()) << "seed=" << seed;
    if (all_reachable) {
      // Full recovery: the true live max arrives.
      EXPECT_EQ(protocol.result(), reachable_max) << "seed=" << seed;
    } else {
      // Even in the degraded case the result is at least the reachable max
      // (idempotent max never fabricates values).
      EXPECT_GE(protocol.result(), reachable_max) << "seed=" << seed;
    }
  }
}

TEST(Reduce, ValidatesInput) {
  const topo::Tree tree = topo::make_binomial_interleaved(4);
  const sim::LogP params{2, 1, 1, 4};
  EXPECT_THROW(CorrectedReduce(tree, params, {1, 2, 3}, ReduceConfig{}),
               std::invalid_argument);
  EXPECT_THROW(CorrectedReduce(tree, params, {1, 2, 3, 4}, ReduceConfig{.distance = -1}),
               std::invalid_argument);
}

TEST(Reduce, DeadlinesAreMonotoneUpTheTree) {
  const topo::Tree tree = topo::make_lame(64, 2);
  const sim::LogP params{2, 1, 1, 64};
  CorrectedReduce protocol(tree, params, std::vector<std::int64_t>(64, 0),
                           ReduceConfig{.distance = 1});
  for (Rank r = 1; r < 64; ++r) {
    EXPECT_GT(protocol.forward_deadline(tree.parent(r)), protocol.forward_deadline(r));
  }
}

// --- Experiment runner ----------------------------------------------------------------

TEST(Runner, AggregateAddAndMerge) {
  sim::RunResult result;
  result.num_procs = 10;
  result.quiescence_latency = 50;
  result.coloring_latency = 40;
  result.total_messages = 30;
  exp::Aggregate a;
  a.add(result);
  exp::Aggregate b;
  result.quiescence_latency = 70;
  result.uncolored_live = 2;
  b.add(result);
  a.merge(b);
  EXPECT_EQ(a.runs, 2);
  EXPECT_EQ(a.not_fully_colored, 1);
  EXPECT_EQ(a.uncolored_total, 2);
  EXPECT_DOUBLE_EQ(a.quiescence_latency.mean(), 60.0);
  EXPECT_DOUBLE_EQ(a.messages_per_process.mean(), 3.0);
}

TEST(Runner, DeterministicAcrossPoolSizes) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, 128};
  scenario.tree = topo::parse_tree_spec("binomial");
  scenario.correction.kind = CorrectionKind::kChecked;
  scenario.correction.start = CorrectionStart::kSynchronized;
  scenario.fault_count = 4;

  const exp::Aggregate serial = exp::run_replicated(scenario, 24, 99, nullptr);
  const support::ThreadPool pool(4);
  const exp::Aggregate pooled = exp::run_replicated(scenario, 24, 99, &pool);
  EXPECT_EQ(serial.runs, pooled.runs);
  EXPECT_DOUBLE_EQ(serial.quiescence_latency.mean(), pooled.quiescence_latency.mean());
  EXPECT_DOUBLE_EQ(serial.quiescence_latency.percentile(0.9),
                   pooled.quiescence_latency.percentile(0.9));
  EXPECT_DOUBLE_EQ(serial.messages_per_process.mean(), pooled.messages_per_process.mean());
}

TEST(Runner, RunOnceMatchesReplication) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, 64};
  scenario.tree = topo::parse_tree_spec("kary:4");
  scenario.correction.kind = CorrectionKind::kOptimizedOpportunistic;
  scenario.correction.start = CorrectionStart::kOverlapped;
  scenario.fault_count = 2;
  const exp::Aggregate aggregate = exp::run_replicated(scenario, 1, 7);
  const sim::RunResult single = exp::run_once(scenario, support::derive_seed(7, 0));
  EXPECT_DOUBLE_EQ(aggregate.quiescence_latency.mean(),
                   static_cast<double>(single.quiescence_latency));
}

TEST(Runner, AutoSyncTimeFilledIn) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, 64};
  scenario.tree = topo::parse_tree_spec("binomial");
  scenario.correction.kind = CorrectionKind::kChecked;
  scenario.correction.start = CorrectionStart::kSynchronized;
  const sim::RunResult result = exp::run_once(scenario, 1);
  const sim::Time expected = fault_free_dissemination_time(
      topo::make_binomial_interleaved(64), scenario.params);
  EXPECT_EQ(result.correction_start, expected);
}

TEST(Runner, ScaleHonoursEnvironment) {
  ::setenv("CT_PROCS", "2048", 1);
  ::setenv("CT_REPS", "7", 1);
  const exp::Scale scale = exp::default_scale(1024, 100);
  EXPECT_EQ(scale.procs, 2048);
  EXPECT_EQ(scale.reps, 7u);
  ::unsetenv("CT_PROCS");
  ::unsetenv("CT_REPS");
  const exp::Scale fallback = exp::default_scale(1024, 100);
  EXPECT_EQ(fallback.procs, 1024);
  EXPECT_EQ(fallback.reps, 100u);
}

}  // namespace
}  // namespace ct::proto

// Tests for the extension surface: data-plane payload delivery, the
// collectives built from the two phases (all-reduce, barrier), physical
// placement + correlated faults (§2.1), tree relabeling, the related-work
// baselines (§5) and the LogGP model extension.

#include <gtest/gtest.h>

#include <set>

#include "experiment/runner.hpp"
#include "protocol/allreduce.hpp"
#include "protocol/baselines.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"
#include "topology/gaps.hpp"
#include "topology/placement.hpp"

namespace ct {
namespace {

using topo::Rank;

// --- Data plane -----------------------------------------------------------------

TEST(DataPlane, BroadcastDeliversPayloadToEveryLiveRank) {
  const Rank procs = 256;
  const std::int64_t payload = 0xC0FFEE;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    support::Xoshiro256ss rng(seed);
    const sim::FaultSet faults = sim::FaultSet::random_count(procs, 12, rng);

    proto::CorrectionConfig correction;
    correction.kind = proto::CorrectionKind::kChecked;
    correction.start = proto::CorrectionStart::kSynchronized;
    correction.sync_time = proto::fault_free_dissemination_time(tree, params);
    proto::CorrectedTreeBroadcast broadcast(tree, correction, payload);

    sim::Simulator simulator(params, faults);
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    const sim::RunResult result = simulator.run(broadcast, options);
    ASSERT_TRUE(result.fully_colored()) << "seed=" << seed;
    for (Rank r = 0; r < procs; ++r) {
      if (faults.failed_from_start(r)) continue;
      EXPECT_EQ(result.rank_data[static_cast<std::size_t>(r)], payload)
          << "rank " << r << " seed " << seed
          << " was colored without receiving the payload";
    }
  }
}

TEST(DataPlane, CorrectionColoredRanksGetDataToo) {
  // Kill an inner node: its descendants are colored by correction messages
  // only — they must still learn the payload (the correction message IS the
  // broadcast message).
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  correction.start = proto::CorrectionStart::kOverlapped;
  correction.distance = 4;
  proto::CorrectedTreeBroadcast broadcast(tree, correction, 99);
  sim::Simulator simulator(params, sim::FaultSet::from_list(procs, {1}));
  sim::RunOptions options;
  options.keep_per_rank_detail = true;
  const sim::RunResult result = simulator.run(broadcast, options);
  ASSERT_TRUE(result.fully_colored());
  for (Rank r = 0; r < procs; ++r) {
    if (r == 1) continue;
    EXPECT_EQ(result.rank_data[static_cast<std::size_t>(r)], 99) << "rank " << r;
  }
}

// --- All-reduce and barrier --------------------------------------------------------

TEST(AllReduce, EveryLiveRankLearnsTheMax) {
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    support::Xoshiro256ss rng(seed);
    const sim::FaultSet faults = sim::FaultSet::random_count(procs, 4, rng);
    std::vector<std::int64_t> values;
    for (Rank r = 0; r < procs; ++r) {
      values.push_back(static_cast<std::int64_t>(rng.below(1'000'000)));
    }

    proto::AllReduceConfig config;
    config.reduce.distance = 2;
    config.correction.kind = proto::CorrectionKind::kChecked;
    config.correction.start = proto::CorrectionStart::kOverlapped;
    proto::CorrectedAllReduce allreduce(tree, params, values, config);
    sim::Simulator simulator(params, faults);
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    const sim::RunResult result = simulator.run(allreduce, options);

    ASSERT_TRUE(allreduce.reduction_done()) << "seed=" << seed;
    ASSERT_TRUE(result.fully_colored()) << "seed=" << seed;
    // Whatever the gather produced (its guarantee is tested separately),
    // the broadcast phase must hand the SAME result to every live rank.
    for (Rank r = 0; r < procs; ++r) {
      if (faults.failed_from_start(r)) continue;
      EXPECT_EQ(result.rank_data[static_cast<std::size_t>(r)], allreduce.result())
          << "rank " << r << " seed " << seed;
    }
  }
}

TEST(AllReduce, FaultFreeResultIsExactMax) {
  const Rank procs = 200;
  const topo::Tree tree = topo::make_lame(procs, 2);
  const sim::LogP params{2, 1, 1, procs};
  support::Xoshiro256ss rng(5);
  std::vector<std::int64_t> values;
  std::int64_t expected = 0;
  for (Rank r = 0; r < procs; ++r) {
    values.push_back(static_cast<std::int64_t>(rng.below(1u << 30)));
    expected = std::max(expected, values.back());
  }
  proto::CorrectedAllReduce allreduce(tree, params, values, {});
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(allreduce);
  EXPECT_EQ(allreduce.result(), expected);
  EXPECT_TRUE(result.fully_colored());
}

TEST(Barrier, ReleasesAllLiveRanks) {
  const Rank procs = 96;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    support::Xoshiro256ss rng(seed);
    proto::AllReduceConfig config;
    config.correction.kind = proto::CorrectionKind::kChecked;
    config.correction.start = proto::CorrectionStart::kOverlapped;
    proto::CorrectedBarrier barrier(tree, params, config);
    sim::Simulator simulator(params, sim::FaultSet::random_count(procs, 6, rng));
    const sim::RunResult result = simulator.run(barrier);
    EXPECT_TRUE(barrier.released()) << "seed=" << seed;
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

// --- Placement and correlated faults -----------------------------------------------

TEST(Placement, AllPlacementsAreBijectionsFixingZero) {
  for (auto placement :
       {topo::Placement::kBlock, topo::Placement::kStriped, topo::Placement::kRandom}) {
    const auto ranks = topo::make_placement(64, 8, placement, 3);
    ASSERT_EQ(ranks.size(), 64u);
    EXPECT_EQ(ranks[0], 0);
    std::set<Rank> unique(ranks.begin(), ranks.end());
    EXPECT_EQ(unique.size(), 64u) << topo::placement_name(placement);
  }
}

TEST(Placement, StripedSpreadsNodeMates) {
  const auto ranks = topo::make_placement(64, 8, topo::Placement::kStriped);
  // Node 3 hosts pids 24..31 -> ranks {3, 11, 19, ..., 59}: spaced by 8.
  const auto node3 = topo::node_ranks(ranks, 3, 8);
  ASSERT_EQ(node3.size(), 8u);
  for (std::size_t i = 1; i < node3.size(); ++i) {
    EXPECT_EQ(node3[i] - node3[i - 1], 8);
  }
}

TEST(Placement, BlockKeepsNodeMatesTogether) {
  const auto ranks = topo::make_placement(64, 8, topo::Placement::kBlock);
  const auto node2 = topo::node_ranks(ranks, 2, 8);
  EXPECT_EQ(node2.front(), 16);
  EXPECT_EQ(node2.back(), 23);
}

TEST(Placement, StripedRequiresDivisibility) {
  EXPECT_THROW(topo::make_placement(65, 8, topo::Placement::kStriped),
               std::invalid_argument);
  EXPECT_NO_THROW(topo::make_placement(65, 8, topo::Placement::kBlock));
}

TEST(Placement, RandomIsSeededAndReproducible) {
  const auto a = topo::make_placement(128, 8, topo::Placement::kRandom, 5);
  const auto b = topo::make_placement(128, 8, topo::Placement::kRandom, 5);
  const auto c = topo::make_placement(128, 8, topo::Placement::kRandom, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CorrelatedFaults, KillsWholeNodesSparingRoot) {
  const auto ranks = topo::make_placement(64, 8, topo::Placement::kStriped);
  support::Xoshiro256ss rng(9);
  const sim::FaultSet faults = sim::FaultSet::correlated_nodes(ranks, 8, 3, rng);
  EXPECT_EQ(faults.failed_count(), 24);
  EXPECT_TRUE(faults.always_alive(0));
  // Failed ranks partition into exactly three whole nodes.
  std::set<Rank> failed;
  for (Rank r : faults.initially_failed()) failed.insert(r);
  int whole_nodes = 0;
  for (Rank node = 0; node < 8; ++node) {
    const auto members = topo::node_ranks(ranks, node, 8);
    const bool all = std::all_of(members.begin(), members.end(),
                                 [&](Rank r) { return failed.count(r) > 0; });
    const bool none = std::none_of(members.begin(), members.end(),
                                   [&](Rank r) { return failed.count(r) > 0; });
    EXPECT_TRUE(all || none) << "node " << node << " partially failed";
    whole_nodes += all;
  }
  EXPECT_EQ(whole_nodes, 3);
}

TEST(CorrelatedFaults, StripedPlacementKeepsGapsSmall) {
  // §2.1's point, end to end: one crashed node under block placement rips a
  // node_size-sized hole into the ring; striped placement leaves gaps the
  // interleaving can handle.
  const Rank procs = 1024;
  const Rank node_size = 8;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const sim::Time sync = proto::fault_free_dissemination_time(tree, params);

  auto max_gap_for = [&](topo::Placement placement, std::uint64_t seed) {
    const auto ranks = topo::make_placement(procs, node_size, placement, seed);
    support::Xoshiro256ss rng(seed);
    const sim::FaultSet faults = sim::FaultSet::correlated_nodes(ranks, node_size, 2, rng);
    proto::CorrectionConfig correction;
    correction.kind = proto::CorrectionKind::kChecked;
    correction.start = proto::CorrectionStart::kSynchronized;
    correction.sync_time = sync;
    proto::CorrectedTreeBroadcast broadcast(tree, correction);
    sim::Simulator simulator(params, faults);
    const sim::RunResult result = simulator.run(broadcast);
    EXPECT_TRUE(result.fully_colored());
    return result.dissemination_gaps.max_gap;
  };

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_GE(max_gap_for(topo::Placement::kBlock, seed), node_size);
    EXPECT_LT(max_gap_for(topo::Placement::kStriped, seed), node_size);
  }
}

// --- Tree relabeling ----------------------------------------------------------------

TEST(Relabel, PreservesShapeAndMovesLabels) {
  const topo::Tree base = topo::make_binomial_interleaved(16);
  std::vector<Rank> sigma(16);
  sigma[0] = 0;
  for (Rank r = 1; r < 16; ++r) sigma[static_cast<std::size_t>(r)] = 16 - r;
  const topo::Tree relabeled = topo::relabel_tree(base, sigma);
  EXPECT_EQ(relabeled.height(), base.height());
  EXPECT_EQ(relabeled.max_fanout(), base.max_fanout());
  // children(0) = {1,2,4,8} maps to {15,14,12,8}, in the same send order.
  const auto children = relabeled.children(0);
  ASSERT_EQ(children.size(), 4u);
  EXPECT_EQ(children[0], 15);
  EXPECT_EQ(children[1], 14);
  EXPECT_EQ(children[2], 12);
  EXPECT_EQ(children[3], 8);
}

TEST(Relabel, Validation) {
  const topo::Tree base = topo::make_binomial_interleaved(8);
  EXPECT_THROW(topo::relabel_tree(base, {0, 1, 2}), std::invalid_argument);
  std::vector<Rank> not_fixing_root{1, 0, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(topo::relabel_tree(base, not_fixing_root), std::invalid_argument);
}

TEST(Relabel, RandomRenumberingStillBroadcastsCorrectly) {
  // The §2.1 random-renumbering trick: the relabeled tree is a valid
  // broadcast tree (coloring everyone) even though it forfeits Definition 1.
  const Rank procs = 200;
  const auto sigma = topo::make_placement(procs, 1, topo::Placement::kRandom, 11);
  const topo::Tree tree =
      topo::relabel_tree(topo::make_binomial_interleaved(procs), sigma);
  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kChecked;
  correction.start = proto::CorrectionStart::kOverlapped;
  proto::CorrectedTreeBroadcast broadcast(tree, correction);
  support::Xoshiro256ss rng(3);
  sim::Simulator simulator(sim::LogP{2, 1, 1, procs},
                           sim::FaultSet::random_count(procs, 10, rng));
  EXPECT_TRUE(simulator.run(broadcast).fully_colored());
}

// --- Related-work baselines -----------------------------------------------------------

TEST(DetectorBaseline, FaultFreeBehavesLikePlainTree) {
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::DetectorTreeBroadcast broadcast(tree, params, {}, 7);
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(broadcast);
  EXPECT_TRUE(result.fully_colored());
  EXPECT_EQ(result.total_messages, procs - 1);  // no pulls fired
}

TEST(DetectorBaseline, RecoversFromFailuresViaPulls) {
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    support::Xoshiro256ss rng(seed);
    proto::DetectorTreeBroadcast broadcast(tree, params, {}, 7);
    sim::Simulator simulator(params, sim::FaultSet::random_count(procs, 8, rng));
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    const sim::RunResult result = simulator.run(broadcast, options);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
    for (Rank r = 0; r < procs; ++r) {
      if (result.colored_at[static_cast<std::size_t>(r)] != sim::kTimeNever) {
        EXPECT_EQ(result.rank_data[static_cast<std::size_t>(r)], 7);
      }
    }
  }
}

TEST(DetectorBaseline, PaysDetectionLatencyThatCorrectedTreesAvoid) {
  // §5: detector-based recovery stalls for the timeout; corrected trees
  // tolerate the same failure proactively.
  const Rank procs = 256;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const sim::FaultSet faults = sim::FaultSet::from_list(procs, {1});

  proto::DetectorTreeBroadcast detector(tree, params, {}, 0);
  sim::Simulator detector_sim(params, faults);
  const sim::RunResult detector_result = detector_sim.run(detector);

  proto::CorrectionConfig correction;
  correction.kind = proto::CorrectionKind::kChecked;
  correction.start = proto::CorrectionStart::kOverlapped;
  proto::CorrectedTreeBroadcast corrected(tree, correction);
  sim::Simulator corrected_sim(params, faults);
  const sim::RunResult corrected_result = corrected_sim.run(corrected);

  ASSERT_TRUE(detector_result.fully_colored());
  ASSERT_TRUE(corrected_result.fully_colored());
  EXPECT_GT(detector_result.coloring_latency, corrected_result.coloring_latency);
}

TEST(MultiTree, RotatedTreesShareFewInnerNodes) {
  const Rank procs = 256;
  const auto trees = proto::make_rotated_trees(procs, 2);
  ASSERT_EQ(trees.size(), 2u);
  Rank inner_in_both = 0;
  for (Rank r = 1; r < procs; ++r) {
    if (!trees[0].children(r).empty() && !trees[1].children(r).empty()) {
      ++inner_in_both;
    }
  }
  EXPECT_LT(inner_in_both, procs / 4);
}

TEST(MultiTree, FaultFreeDoublesMessages) {
  const Rank procs = 128;
  proto::MultiTreeBroadcast broadcast(proto::make_rotated_trees(procs, 2), 5);
  sim::Simulator simulator(sim::LogP{2, 1, 1, procs}, sim::FaultSet::none(procs));
  const sim::RunResult result = simulator.run(broadcast);
  EXPECT_TRUE(result.fully_colored());
  EXPECT_EQ(result.total_messages, 2 * (procs - 1));
}

TEST(MultiTree, LeafInSomeTreeVictimsCannotHurt) {
  // If the victim is a leaf of at least one tree, that tree alone reaches
  // every other process — full coloring is structural, not probabilistic.
  const Rank procs = 128;
  const auto trees = proto::make_rotated_trees(procs, 2);
  int tested = 0;
  for (Rank victim = 1; victim < procs && tested < 40; ++victim) {
    const bool leaf_somewhere =
        trees[0].children(victim).empty() || trees[1].children(victim).empty();
    if (!leaf_somewhere) continue;
    ++tested;
    proto::MultiTreeBroadcast broadcast(proto::make_rotated_trees(procs, 2), 5);
    sim::Simulator simulator(sim::LogP{2, 1, 1, procs},
                             sim::FaultSet::from_list(procs, {victim}));
    const sim::RunResult result = simulator.run(broadcast);
    EXPECT_EQ(result.uncolored_live, 0) << "victim " << victim;
  }
  EXPECT_GT(tested, 20);
}

// --- LogGP model extension --------------------------------------------------------------

TEST(LogGP, DefaultsDegenerateToLogP) {
  const sim::LogP p{2, 1, 1, 4};
  EXPECT_EQ(p.overhead_time(), p.o);
  EXPECT_EQ(p.wire_time(), p.L);
  EXPECT_EQ(p.message_cost(), 2 * p.o + p.L);
}

TEST(LogGP, PerByteCostsApply) {
  sim::LogP p{10, 2, 1, 4};
  p.G = 3;
  p.O = 1;
  p.bytes = 5;
  p.validate();
  // LogGP injection: send_cost(k) = o + (k-1)G; overhead adds (k-1)O of CPU.
  EXPECT_EQ(p.send_cost(p.bytes), 2 + 3 * 4);
  EXPECT_EQ(p.overhead_time(), (2 + 3 * 4) + 1 * 4);
  EXPECT_EQ(p.wire_time(), 10);  // pure latency; serialisation is injection cost
  EXPECT_EQ(p.message_cost(), 2 * 18 + 10);
  EXPECT_EQ(p.port_period(), 18);  // injection+processing dominates g
}

TEST(LogGP, Validation) {
  sim::LogP p{2, 1, 1, 4};
  p.bytes = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.bytes = 1;
  p.G = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(LogGP, SimulatorHonoursMessageSize) {
  // One message, 8 bytes, G=2, O=1: received at 2*(send_cost(8)+7O) + L
  // with send_cost(8) = o + 7G (LogGP injection on both ports).
  sim::LogP p{4, 1, 1, 2};
  p.G = 2;
  p.O = 1;
  p.bytes = 8;

  struct Probe : sim::Protocol {
    sim::Time received = -1;
    void begin(sim::Context& ctx) override { ctx.send(0, 1, 1, 0); }
    void on_receive(sim::Context& ctx, Rank, const sim::Message&) override {
      received = ctx.now();
    }
    void on_sent(sim::Context&, Rank, const sim::Message&) override {}
  } probe;

  sim::Simulator simulator(p, sim::FaultSet::none(2));
  simulator.run(probe);
  EXPECT_EQ(probe.received, 2 * ((1 + 7 * 2) + 7 * 1) + 4);
}

TEST(LogGP, LargeMessagesSlowTheBroadcastProportionally) {
  const Rank procs = 256;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::LogP small{2, 1, 1, procs};
  sim::LogP large = small;
  large.G = 1;
  large.O = 1;
  large.bytes = 16;
  const sim::Time t_small = proto::fault_free_dissemination_time(tree, small);
  const sim::Time t_large = proto::fault_free_dissemination_time(tree, large);
  EXPECT_GT(t_large, 4 * t_small);
}

}  // namespace
}  // namespace ct

// NOTE: appended suite — two-level locality (node-aware latency).
namespace ct {
namespace {

using topo::Rank;

std::vector<std::int32_t> node_map_of(const std::vector<Rank>& rank_of_pid,
                                      Rank node_size) {
  std::vector<std::int32_t> node_of_rank(rank_of_pid.size());
  for (std::size_t pid = 0; pid < rank_of_pid.size(); ++pid) {
    node_of_rank[static_cast<std::size_t>(rank_of_pid[pid])] =
        static_cast<std::int32_t>(pid / static_cast<std::size_t>(node_size));
  }
  return node_of_rank;
}

TEST(Locality, IntraNodeMessagesAreFaster) {
  sim::LogP p{10, 1, 1, 4};
  sim::Locality locality;
  locality.node_of_rank = {0, 0, 1, 1};  // ranks 0,1 share a node
  locality.L_intra = 1;

  struct Probe : sim::Protocol {
    sim::Time local = -1, remote = -1;
    void begin(sim::Context& ctx) override {
      ctx.send(0, 1, 1, 0);  // same node
      ctx.send(2, 3, 1, 0);  // same node (other)
      ctx.send(1, 2, 1, 0);  // cross node
    }
    void on_receive(sim::Context& ctx, Rank me, const sim::Message& msg) override {
      if (msg.src == 0) local = ctx.now();
      if (msg.src == 1 && me == 2) remote = ctx.now();
    }
    void on_sent(sim::Context&, Rank, const sim::Message&) override {}
  } probe;

  sim::Simulator simulator(p, sim::FaultSet::none(4), locality);
  simulator.run(probe);
  EXPECT_EQ(probe.local, 2 * p.o + locality.L_intra);
  EXPECT_EQ(probe.remote, 2 * p.o + p.L);
}

TEST(Locality, Validation) {
  sim::LogP p{2, 1, 1, 4};
  sim::Locality bad_size;
  bad_size.node_of_rank = {0, 0};
  EXPECT_THROW(sim::Simulator(p, sim::FaultSet::none(4), bad_size),
               std::invalid_argument);
  sim::Locality bad_latency;
  bad_latency.node_of_rank = {0, 0, 1, 1};
  bad_latency.L_intra = 5;  // > L
  EXPECT_THROW(sim::Simulator(p, sim::FaultSet::none(4), bad_latency),
               std::invalid_argument);
}

TEST(Locality, PlacementTradeOffIsReal) {
  // Under node-aware latency the ring-friendly choices cost dissemination
  // speed (§2.1 + §6 tension): the IN-ORDER tree with BLOCK placement keeps
  // its offset-1 DFS edges on-node and disseminates fastest, while striping
  // the same tree makes every edge remote. The interleaved tree — whose
  // critical path uses large offsets only — is locality-neutral.
  const Rank procs = 512;
  const Rank node_size = 8;
  sim::LogP params{6, 1, 1, procs};

  auto dissemination_under = [&](const char* spec, topo::Placement placement) {
    const topo::Tree tree = topo::make_tree(topo::parse_tree_spec(spec), procs);
    const auto rank_of_pid = topo::make_placement(procs, node_size, placement, 1);
    sim::Locality locality;
    locality.node_of_rank = node_map_of(rank_of_pid, node_size);
    locality.L_intra = 1;
    proto::CorrectionConfig none;
    none.kind = proto::CorrectionKind::kNone;
    proto::CorrectedTreeBroadcast broadcast(tree, none);
    sim::Simulator simulator(params, sim::FaultSet::none(procs), locality);
    return simulator.run(broadcast).coloring_latency;
  };

  const sim::Time inorder_block =
      dissemination_under("binomial-inorder", topo::Placement::kBlock);
  const sim::Time inorder_striped =
      dissemination_under("binomial-inorder", topo::Placement::kStriped);
  const sim::Time interleaved_block =
      dissemination_under("binomial", topo::Placement::kBlock);
  const sim::Time interleaved_striped =
      dissemination_under("binomial", topo::Placement::kStriped);

  EXPECT_LT(inorder_block, inorder_striped);
  EXPECT_LT(inorder_block, interleaved_block);
  // The interleaved tree pays (almost) nothing for striping.
  EXPECT_LE(interleaved_striped, interleaved_block + params.L);
}

}  // namespace
}  // namespace ct

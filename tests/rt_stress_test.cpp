// Runtime stress: many epochs × many ranks × random fault sets on both
// executor backends, sized for the `sanitize` ctest label (the tsan preset
// runs exactly these tests). The point is not the protocol outcome — the
// shard-boundary suite covers that — but hammering the concurrency
// machinery: cross-shard MPSC batches, the epoch barrier, completion
// counting, and the Mailbox kick()/pop_for() wake-up on the legacy path.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "protocol/tree_broadcast.hpp"
#include "rt/engine.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

proto::CorrectionConfig checked_overlapped() {
  // Checked correction keeps probing until live neighbours answer, so it
  // recovers any fault placement — no gap-size precondition to maintain
  // while the RNG varies the failure sets.
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kOverlapped;
  return config;
}

std::vector<char> random_faults(Rank procs, Rank count, support::Xoshiro256ss& rng) {
  std::vector<char> failed(static_cast<std::size_t>(procs), 0);
  Rank placed = 0;
  while (placed < count) {
    const auto victim = static_cast<std::size_t>(
        1 + rng.below(static_cast<std::uint64_t>(procs) - 1));
    if (!failed[victim]) {
      failed[victim] = 1;
      ++placed;
    }
  }
  return failed;
}

TEST(RtStress, ShardedManyEpochsManyRanksRandomFaults) {
  const Rank procs = 96;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  support::Xoshiro256ss rng(0xC0FFEE);
  for (int config = 0; config < 3; ++config) {
    const std::vector<char> failed = random_faults(procs, 8, rng);
    EngineOptions options;
    options.workers = 4;  // forces real cross-shard traffic even on 1 core
    Engine engine(procs, failed, options);
    for (int epoch = 0; epoch < 6; ++epoch) {
      proto::CorrectedTreeBroadcast protocol(tree, checked_overlapped());
      const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
      ASSERT_FALSE(result.timed_out) << "config " << config << " epoch " << epoch;
      EXPECT_EQ(result.uncolored_live, 0) << "config " << config << " epoch " << epoch;
    }
  }
}

TEST(RtStress, ShardedTinyInboxBackpressure) {
  // Capacity-starved inboxes force partial flushes and retry loops across
  // epochs — the staged-overflow path must stay race-free too.
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.inbox_capacity = 4;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0), options);
  for (int epoch = 0; epoch < 6; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(tree, checked_overlapped());
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
  }
}

TEST(RtStress, ShardedChaosSoakCrashDropDelay) {
  // Chaos mode (DESIGN.md §4d): mid-epoch crashes plus link perturbations
  // over many epochs. The assertion is purely about the machinery — every
  // epoch terminates (deadline, not hang), every never-crashed survivor is
  // colored under checked correction, and the crash bookkeeping balances.
  // Sized so the tsan preset (5-20× slowdown, 1-core box) stays within the
  // 600 s test timeout.
  const Rank procs = 512;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.epoch_deadline = std::chrono::seconds(5);
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosOptions chaos;
  chaos.seed = 0x50A1u;
  chaos.crash_fraction = 0.02;
  chaos.drop_prob = 0.01;
  chaos.delay_prob = 0.01;
  chaos.delay_ns = 100'000;
  engine.set_chaos(ChaosPlan(chaos));
  std::int64_t crashes = 0;
  for (int epoch = 0; epoch < 25; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(tree, checked_overlapped());
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(30));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    ASSERT_EQ(result.crashed_mid_epoch,
              static_cast<std::int32_t>(result.crashed_ranks.size()));
    crashes += result.crashed_mid_epoch;
  }
  EXPECT_GT(crashes, 0);  // 2% of 512 ranks over 25 epochs
}

TEST(RtStress, ThreadPerRankChaosSoak) {
  // Same chaos schedule shape on the legacy 1:1 executor: crash_self() in
  // the worker loop, the per-thread delayed-envelope vector, and the
  // progress-independent deadline check all run under the sanitizer here.
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.threading = Threading::kThreadPerRank;
  options.epoch_deadline = std::chrono::seconds(5);
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosOptions chaos;
  chaos.seed = 0xC4A05u;
  chaos.crash_fraction = 0.03;
  chaos.drop_prob = 0.01;
  chaos.delay_prob = 0.01;
  chaos.delay_ns = 100'000;
  engine.set_chaos(ChaosPlan(chaos));
  std::int64_t crashes = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(tree, checked_overlapped());
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(30));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    crashes += result.crashed_mid_epoch;
  }
  EXPECT_GT(crashes, 0);
}

TEST(RtStress, ThreadPerRankLegacyPathManyEpochs) {
  // The legacy 1:1 executor under the sanitizer: exercises per-rank
  // mailboxes and the generation-stamped kick()/pop_for() shutdown path
  // (a kicked waiter must not re-block for a full timeout slice).
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  support::Xoshiro256ss rng(0xFEED);
  const std::vector<char> failed = random_faults(procs, 3, rng);
  EngineOptions options;
  options.threading = Threading::kThreadPerRank;
  Engine engine(procs, failed, options);
  for (int epoch = 0; epoch < 5; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(tree, checked_overlapped());
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
  }
}

}  // namespace
}  // namespace ct::rt

// Small-world sweep: tiny process counts exercise every ring-wraparound and
// degenerate-tree path (P = 1, 2, 3 rings where "left" and "right" collide,
// correction distances exceeding P, trees that are a single chain or a
// star). Every correction kind must terminate and color everything in the
// fault-free case, and the checked/failure-proof kinds under faults too.

#include <gtest/gtest.h>

#include <tuple>

#include "experiment/runner.hpp"
#include "protocol/allreduce.hpp"
#include "protocol/baselines.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "topology/factory.hpp"

namespace ct::proto {
namespace {

using topo::Rank;

class SmallWorldTest
    : public ::testing::TestWithParam<std::tuple<Rank, std::string, CorrectionKind>> {};

TEST_P(SmallWorldTest, FaultFreeColorsAndTerminates) {
  const auto [procs, tree, kind] = GetParam();
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.tree = topo::parse_tree_spec(tree);
  scenario.correction.kind = kind;
  scenario.correction.start = kind == CorrectionKind::kChecked ||
                                      kind == CorrectionKind::kFailureProof ||
                                      kind == CorrectionKind::kDelayed
                                  ? CorrectionStart::kSynchronized
                                  : CorrectionStart::kOverlapped;
  scenario.correction.distance = 4;  // > P for the smallest cases
  scenario.correction.delay = 2 * scenario.params.message_cost();
  if (scenario.correction.start == CorrectionStart::kSynchronized && procs == 1) {
    // A single process disseminates instantly; sync time 0 is rejected by
    // design — use overlapped there.
    scenario.correction.start = CorrectionStart::kOverlapped;
  }
  sim::RunOptions options;
  options.max_events = 2'000'000;  // termination guard for tiny rings
  const sim::RunResult result = exp::run_once(scenario, 1, options);
  EXPECT_TRUE(result.fully_colored())
      << "P=" << procs << " tree=" << tree << " correction="
      << correction_kind_name(kind) << " left " << result.uncolored_live;
}

INSTANTIATE_TEST_SUITE_P(
    TinyWorlds, SmallWorldTest,
    ::testing::Combine(::testing::Values<Rank>(1, 2, 3, 4, 5, 7),
                       ::testing::Values("binomial", "kary:2", "lame:2"),
                       ::testing::Values(CorrectionKind::kNone,
                                         CorrectionKind::kOpportunistic,
                                         CorrectionKind::kOptimizedOpportunistic,
                                         CorrectionKind::kChecked,
                                         CorrectionKind::kFailureProof,
                                         CorrectionKind::kDelayed)),
    [](const auto& info) {
      std::string name = "P" + std::to_string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param) + "_" +
                         correction_kind_name(std::get<2>(info.param));
      for (char& ch : name) {
        if (ch == ':' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(SmallWorld, CheckedSurvivesMaximalFaultsOnTinyRings) {
  // All but the root dead: correction has nobody to color, but must still
  // terminate quietly.
  for (Rank procs : {2, 3, 5}) {
    std::vector<Rank> victims;
    for (Rank r = 1; r < procs; ++r) victims.push_back(r);
    const topo::Tree tree = topo::make_binomial_interleaved(procs);
    const sim::LogP params{2, 1, 1, procs};
    CorrectionConfig config;
    config.kind = CorrectionKind::kChecked;
    config.start = CorrectionStart::kSynchronized;
    config.sync_time = fault_free_dissemination_time(tree, params);
    CorrectedTreeBroadcast broadcast(tree, config);
    sim::Simulator simulator(params, sim::FaultSet::from_list(procs, victims));
    const sim::RunResult result = simulator.run(broadcast);
    EXPECT_TRUE(result.fully_colored()) << "P=" << procs;  // root only
    EXPECT_EQ(result.uncolored_live, 0);
  }
}

TEST(SmallWorld, SingleSurvivorPairs) {
  // P = 2 with rank 1 dead, and P = 2 fault-free, across all corrections.
  for (CorrectionKind kind :
       {CorrectionKind::kOpportunistic, CorrectionKind::kChecked,
        CorrectionKind::kFailureProof, CorrectionKind::kDelayed}) {
    for (bool kill : {false, true}) {
      const topo::Tree tree = topo::make_binomial_interleaved(2);
      const sim::LogP params{2, 1, 1, 2};
      CorrectionConfig config;
      config.kind = kind;
      config.start = CorrectionStart::kOverlapped;
      config.distance = 3;
      config.delay = 8;
      CorrectedTreeBroadcast broadcast(tree, config);
      sim::Simulator simulator(params, kill ? sim::FaultSet::from_list(2, {1})
                                            : sim::FaultSet::none(2));
      const sim::RunResult result = simulator.run(broadcast);
      EXPECT_TRUE(result.fully_colored()) << correction_kind_name(kind) << " kill=" << kill;
    }
  }
}

TEST(SmallWorld, CollectivesOnTinyTrees) {
  for (Rank procs : {1, 2, 3, 5}) {
    const topo::Tree tree = topo::make_binomial_interleaved(procs);
    const sim::LogP params{2, 1, 1, procs};
    std::vector<std::int64_t> values;
    for (Rank r = 0; r < procs; ++r) values.push_back(r * 10);

    AllReduceConfig config;
    config.correction.kind = CorrectionKind::kChecked;
    config.correction.start = CorrectionStart::kOverlapped;
    CorrectedAllReduce allreduce(tree, params, values, config);
    sim::Simulator simulator(params, sim::FaultSet::none(procs));
    const sim::RunResult result = simulator.run(allreduce);
    EXPECT_TRUE(result.fully_colored()) << "P=" << procs;
    EXPECT_EQ(allreduce.result(), (procs - 1) * 10) << "P=" << procs;
  }
}

TEST(SmallWorld, BaselinesOnTinyTrees) {
  for (Rank procs : {1, 2, 3}) {
    const topo::Tree tree = topo::make_binomial_interleaved(procs);
    const sim::LogP params{2, 1, 1, procs};
    {
      DetectorTreeBroadcast detector(tree, params, {});
      sim::Simulator simulator(params, sim::FaultSet::none(procs));
      EXPECT_TRUE(simulator.run(detector).fully_colored()) << "P=" << procs;
    }
    {
      MultiTreeBroadcast multi(make_rotated_trees(procs, 2));
      sim::Simulator simulator(params, sim::FaultSet::none(procs));
      EXPECT_TRUE(simulator.run(multi).fully_colored()) << "P=" << procs;
    }
  }
}

}  // namespace
}  // namespace ct::proto

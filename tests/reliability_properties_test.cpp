// The four reliability properties of §2.1, checked mechanically over a
// matrix of protocols, trees and fault patterns:
//
//   Integrity         — every broadcast received was previously sent: a
//                       colored process holds exactly the root's payload.
//   No duplicates     — a process "delivers" (transitions to colored) at
//                       most once; later messages are masked.
//   Non-faulty liveness — a broadcast initiated by a live root is received
//                       by all live processes or by none (checked /
//                       failure-proof correction: always by all).
//   Faulty liveness   — trivial under the §2.1 model (the root initiates
//                       and is alive); covered by construction.
//
// A DeliveryMonitor wraps any protocol and observes Context traffic without
// disturbing it.

#include <gtest/gtest.h>

#include <memory>

#include "protocol/baselines.hpp"
#include "protocol/gossip_broadcast.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct {
namespace {

using topo::Rank;

/// Forwards every callback to the inner protocol while recording delivery
/// transitions (uncolored -> colored) and the data each delivery carried.
class DeliveryMonitor final : public sim::Protocol {
 public:
  explicit DeliveryMonitor(std::unique_ptr<sim::Protocol> inner, Rank num_procs)
      : inner_(std::move(inner)),
        deliveries_(static_cast<std::size_t>(num_procs), 0),
        delivered_data_(static_cast<std::size_t>(num_procs), 0) {}

  void begin(sim::Context& ctx) override {
    inner_->begin(ctx);
    observe_all(ctx);
  }
  void on_receive(sim::Context& ctx, Rank me, const sim::Message& msg) override {
    const bool was_colored = ctx.is_colored(me);
    inner_->on_receive(ctx, me, msg);
    if (!was_colored && ctx.is_colored(me)) {
      ++deliveries_[static_cast<std::size_t>(me)];
      delivered_data_[static_cast<std::size_t>(me)] = ctx.rank_data(me);
    }
  }
  void on_sent(sim::Context& ctx, Rank me, const sim::Message& msg) override {
    inner_->on_sent(ctx, me, msg);
  }
  void on_timer(sim::Context& ctx, Rank me, std::int64_t id) override {
    inner_->on_timer(ctx, me, id);
  }

  int deliveries(Rank r) const { return deliveries_[static_cast<std::size_t>(r)]; }
  std::int64_t delivered_data(Rank r) const {
    return delivered_data_[static_cast<std::size_t>(r)];
  }

 private:
  void observe_all(sim::Context& ctx) {
    // The root (and only the root) is delivered by begin().
    for (Rank r = 0; r < ctx.num_procs(); ++r) {
      if (ctx.is_colored(r)) {
        ++deliveries_[static_cast<std::size_t>(r)];
        delivered_data_[static_cast<std::size_t>(r)] = ctx.rank_data(r);
      }
    }
  }

  std::unique_ptr<sim::Protocol> inner_;
  std::vector<int> deliveries_;
  std::vector<std::int64_t> delivered_data_;
};

struct Case {
  std::string name;
  std::function<std::unique_ptr<sim::Protocol>(const topo::Tree&, const sim::LogP&,
                                               std::int64_t payload, std::uint64_t seed)>
      make;
  bool guarantees_full_coloring;  // under pre-broadcast faults
};

std::vector<Case> protocol_matrix() {
  std::vector<Case> cases;
  cases.push_back(
      {"corrected-tree-checked",
       [](const topo::Tree& tree, const sim::LogP& params, std::int64_t payload,
          std::uint64_t) -> std::unique_ptr<sim::Protocol> {
         proto::CorrectionConfig config;
         config.kind = proto::CorrectionKind::kChecked;
         config.start = proto::CorrectionStart::kSynchronized;
         config.sync_time = proto::fault_free_dissemination_time(tree, params);
         return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config, payload);
       },
       true});
  cases.push_back(
      {"corrected-tree-failure-proof",
       [](const topo::Tree& tree, const sim::LogP& params, std::int64_t payload,
          std::uint64_t) -> std::unique_ptr<sim::Protocol> {
         proto::CorrectionConfig config;
         config.kind = proto::CorrectionKind::kFailureProof;
         config.start = proto::CorrectionStart::kSynchronized;
         config.sync_time = proto::fault_free_dissemination_time(tree, params);
         return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config, payload);
       },
       true});
  cases.push_back(
      {"corrected-tree-opportunistic",
       [](const topo::Tree& tree, const sim::LogP&, std::int64_t payload,
          std::uint64_t) -> std::unique_ptr<sim::Protocol> {
         proto::CorrectionConfig config;
         config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
         config.start = proto::CorrectionStart::kOverlapped;
         config.distance = 8;
         return std::make_unique<proto::CorrectedTreeBroadcast>(tree, config, payload);
       },
       false});  // probabilistic only
  cases.push_back(
      {"corrected-gossip-checked",
       [](const topo::Tree& tree, const sim::LogP&, std::int64_t payload,
          std::uint64_t seed) -> std::unique_ptr<sim::Protocol> {
         proto::GossipConfig config;
         config.budget = proto::GossipConfig::Budget::kTime;
         config.gossip_time = 40;
         config.correction.kind = proto::CorrectionKind::kChecked;
         config.correction.start = proto::CorrectionStart::kSynchronized;
         config.correction.sync_time = 40;
         config.seed = seed;
         config.payload = payload;
         return std::make_unique<proto::CorrectedGossipBroadcast>(tree.num_procs(),
                                                                  config);
       },
       true});
  cases.push_back(
      {"detector-tree",
       [](const topo::Tree& tree, const sim::LogP& params, std::int64_t payload,
          std::uint64_t) -> std::unique_ptr<sim::Protocol> {
         return std::make_unique<proto::DetectorTreeBroadcast>(
             tree, params, proto::DetectorConfig{}, payload);
       },
       true});
  return cases;
}

TEST(ReliabilityProperties, HoldAcrossTheProtocolMatrix) {
  const Rank procs = 192;
  const std::int64_t payload = 0xFACADE;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};

  for (const Case& test_case : protocol_matrix()) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      support::Xoshiro256ss rng(seed);
      const sim::FaultSet faults = sim::FaultSet::random_count(procs, 10, rng);
      auto monitor = std::make_unique<DeliveryMonitor>(
          test_case.make(tree, params, payload, seed), procs);
      sim::Simulator simulator(params, faults);
      const sim::RunResult result = simulator.run(*monitor);

      Rank delivered = 0;
      for (Rank r = 0; r < procs; ++r) {
        if (faults.failed_from_start(r)) continue;
        // No duplicates: at most one delivery per process.
        EXPECT_LE(monitor->deliveries(r), 1)
            << test_case.name << " rank " << r << " seed " << seed;
        if (monitor->deliveries(r) == 1) {
          ++delivered;
          // Integrity: the delivered word is the root's payload, nothing
          // invented by correction or recovery machinery.
          EXPECT_EQ(monitor->delivered_data(r), payload)
              << test_case.name << " rank " << r << " seed " << seed;
        }
      }
      if (test_case.guarantees_full_coloring) {
        // Non-faulty liveness, strong form.
        EXPECT_TRUE(result.fully_colored()) << test_case.name << " seed " << seed;
        EXPECT_EQ(delivered, procs - faults.failed_count());
      } else {
        // Probabilistic scheme: "all or some", never a corrupted delivery —
        // integrity/no-duplicates were already asserted above.
        EXPECT_GT(delivered, 0);
      }
    }
  }
}

TEST(ReliabilityProperties, MaskingHidesLateMessages) {
  // A process colored early by correction later receives its tree message;
  // the duplicate must be masked (coloring time unchanged, one delivery).
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kOptimizedOpportunistic;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = 8;
  auto monitor = std::make_unique<DeliveryMonitor>(
      std::make_unique<proto::CorrectedTreeBroadcast>(tree, config, 1), procs);
  sim::Simulator simulator(params, sim::FaultSet::none(procs));
  simulator.run(*monitor);
  for (Rank r = 0; r < procs; ++r) {
    EXPECT_EQ(monitor->deliveries(r), 1) << "rank " << r;
  }
}

}  // namespace
}  // namespace ct

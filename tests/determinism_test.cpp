// Tier-1 determinism guarantees of the rebuilt hot path (run under TSan via
// the `sanitize` ctest label):
//  * run_replicated over a thread pool (2/4/8 workers, work-stealing) is
//    byte-identical to the serial loop;
//  * the calendar event queue replays the exact (time, lane, seq) event
//    order of the binary-heap reference on recorded traces, fault-free and
//    with 2 % faults;
//  * workspace reuse — including reuse across different P and after an
//    aborted run — never changes a seeded RunResult.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct {
namespace {

using topo::Rank;

exp::Scenario corrected_tree_scenario(Rank procs, double fault_fraction) {
  exp::Scenario scenario;
  scenario.label = "determinism";
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = exp::ProtocolKind::kCorrectedTree;
  scenario.tree.kind = topo::TreeKind::kBinomialInterleaved;
  scenario.correction.kind = proto::CorrectionKind::kChecked;
  scenario.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.fault_fraction = fault_fraction;
  return scenario;
}

void expect_same_samples(const support::Samples& a, const support::Samples& b,
                         const char* what) {
  // values() preserves insertion order, so equality here is byte-identity
  // of the whole replication sequence, not just of summary statistics.
  EXPECT_EQ(a.values(), b.values()) << what;
}

void expect_same_aggregate(const exp::Aggregate& a, const exp::Aggregate& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.not_fully_colored, b.not_fully_colored);
  EXPECT_EQ(a.uncolored_total, b.uncolored_total);
  expect_same_samples(a.coloring_latency, b.coloring_latency, "coloring_latency");
  expect_same_samples(a.quiescence_latency, b.quiescence_latency, "quiescence_latency");
  expect_same_samples(a.messages_per_process, b.messages_per_process,
                      "messages_per_process");
  expect_same_samples(a.max_gap, b.max_gap, "max_gap");
  expect_same_samples(a.gap_count, b.gap_count, "gap_count");
  expect_same_samples(a.correction_time, b.correction_time, "correction_time");
}

void expect_same_result(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.num_procs, b.num_procs);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.coloring_latency, b.coloring_latency);
  EXPECT_EQ(a.quiescence_latency, b.quiescence_latency);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.uncolored_live, b.uncolored_live);
  EXPECT_EQ(a.has_dissemination_snapshot, b.has_dissemination_snapshot);
  EXPECT_EQ(a.dissemination_gaps.max_gap, b.dissemination_gaps.max_gap);
  EXPECT_EQ(a.dissemination_gaps.gap_count, b.dissemination_gaps.gap_count);
  EXPECT_EQ(a.correction_start, b.correction_start);
  EXPECT_EQ(a.colored_at, b.colored_at);
  EXPECT_EQ(a.sends_per_rank, b.sends_per_rank);
  EXPECT_EQ(a.rank_data, b.rank_data);
}

TEST(RunReplicated, PooledIsByteIdenticalToSerial) {
  const exp::Scenario scenario = corrected_tree_scenario(256, 0.02);
  const std::size_t reps = 48;
  const std::uint64_t seed = 0xfeedULL;
  const exp::Aggregate serial = exp::run_replicated(scenario, reps, seed);
  for (std::size_t workers : {2u, 4u, 8u}) {
    const support::ThreadPool pool(workers);
    const exp::Aggregate pooled = exp::run_replicated(scenario, reps, seed, &pool);
    SCOPED_TRACE(testing::Message() << "workers=" << workers);
    expect_same_aggregate(serial, pooled);
  }
}

TEST(RunReplicated, GossipPooledIsByteIdenticalToSerial) {
  exp::Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, 128};
  scenario.protocol = exp::ProtocolKind::kGossip;
  scenario.gossip.gossip_time = 60;
  scenario.gossip.correction.kind = proto::CorrectionKind::kChecked;
  scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.gossip.correction.sync_time = scenario.gossip.gossip_time;
  scenario.fault_fraction = 0.05;
  const exp::Aggregate serial = exp::run_replicated(scenario, 24, 7);
  const support::ThreadPool pool(4);
  const exp::Aggregate pooled = exp::run_replicated(scenario, 24, 7, &pool);
  expect_same_aggregate(serial, pooled);
}

// --- ReplicaPlan reuse ------------------------------------------------------

exp::Scenario gossip_scenario(Rank procs, double fault_fraction) {
  exp::Scenario scenario;
  scenario.label = "determinism-gossip";
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.protocol = exp::ProtocolKind::kGossip;
  scenario.gossip.gossip_time = 60;
  scenario.gossip.correction.kind = proto::CorrectionKind::kChecked;
  scenario.gossip.correction.start = proto::CorrectionStart::kSynchronized;
  scenario.gossip.correction.sync_time = scenario.gossip.gossip_time;
  scenario.fault_fraction = fault_fraction;
  return scenario;
}

/// Reusing one ReplicaPlan across replications (what run_replicated does,
/// serial and per pool worker) must be byte-identical to constructing a
/// fresh plan for every replication — for tree and gossip protocols, with
/// and without faults.
TEST(ReplicaPlan, ReuseMatchesFreshPlanSerialAndPooled) {
  const std::size_t reps = 24;
  const std::uint64_t seed = 0x9e11ULL;
  for (const bool gossip : {false, true}) {
    for (const double fault_fraction : {0.0, 0.02}) {
      const exp::Scenario scenario = gossip
                                         ? gossip_scenario(192, fault_fraction)
                                         : corrected_tree_scenario(192, fault_fraction);
      SCOPED_TRACE(testing::Message() << "gossip=" << gossip
                                      << " fault_fraction=" << fault_fraction);
      exp::Aggregate fresh;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        exp::ReplicaPlan plan;  // fresh buffers every replication
        fresh.add(exp::run_once(scenario, support::derive_seed(seed, rep), {}, plan));
      }
      const exp::Aggregate reused = exp::run_replicated(scenario, reps, seed);
      expect_same_aggregate(fresh, reused);
      for (std::size_t workers : {2u, 4u}) {
        const support::ThreadPool pool(workers);
        const exp::Aggregate pooled = exp::run_replicated(scenario, reps, seed, &pool);
        SCOPED_TRACE(testing::Message() << "workers=" << workers);
        expect_same_aggregate(fresh, pooled);
      }
    }
  }
}

// --- Calendar queue vs binary-heap reference --------------------------------

/// One recorded trace entry; every observable field of a TraceEvent.
using TraceRec = std::tuple<int, sim::Time, Rank, Rank, sim::Tag, std::int64_t,
                            std::int64_t, std::int64_t>;

std::vector<TraceRec> record_trace(const sim::LogP& params, const sim::FaultSet& faults,
                                   const topo::Tree& tree, sim::QueueKind queue) {
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  proto::CorrectedTreeBroadcast protocol(tree, config);
  sim::Simulator simulator(params, faults);
  std::vector<TraceRec> trace;
  sim::RunOptions options;
  options.queue = queue;
  options.trace = [&trace](const sim::TraceEvent& event) {
    trace.emplace_back(static_cast<int>(event.kind), event.time, event.msg.src,
                       event.msg.dst, event.msg.tag, event.msg.payload, event.msg.data,
                       event.timer_id);
  };
  simulator.run(protocol, options);
  return trace;
}

TEST(CalendarQueue, ReplaysHeapOrderFaultFree) {
  const sim::LogP params{2, 1, 1, 512};
  const topo::Tree tree = topo::make_binomial_interleaved(params.P);
  const sim::FaultSet faults = sim::FaultSet::none(params.P);
  const auto heap = record_trace(params, faults, tree, sim::QueueKind::kBinaryHeap);
  const auto calendar = record_trace(params, faults, tree, sim::QueueKind::kCalendar);
  ASSERT_FALSE(heap.empty());
  EXPECT_EQ(heap, calendar);
}

TEST(CalendarQueue, ReplaysHeapOrderWithFaults) {
  const sim::LogP params{2, 1, 1, 512};
  const topo::Tree tree = topo::make_binomial_interleaved(params.P);
  support::Xoshiro256ss rng(21);
  const sim::FaultSet faults = sim::FaultSet::random_fraction(params.P, 0.02, rng);
  const auto heap = record_trace(params, faults, tree, sim::QueueKind::kBinaryHeap);
  const auto calendar = record_trace(params, faults, tree, sim::QueueKind::kCalendar);
  ASSERT_FALSE(heap.empty());
  EXPECT_EQ(heap, calendar);
}

/// Minimal scriptable protocol for poking queue edge cases.
class ScriptProtocol : public sim::Protocol {
 public:
  std::function<void(sim::Context&)> on_begin;
  std::function<void(sim::Context&, Rank, std::int64_t)> on_timer_fn;

  void begin(sim::Context& ctx) override {
    if (on_begin) on_begin(ctx);
  }
  void on_receive(sim::Context& ctx, Rank me, const sim::Message&) override {
    ctx.mark_colored(me);
  }
  void on_sent(sim::Context&, Rank, const sim::Message&) override {}
  void on_timer(sim::Context& ctx, Rank me, std::int64_t id) override {
    if (on_timer_fn) on_timer_fn(ctx, me, id);
  }
};

TEST(CalendarQueue, FarTimersTakeOverflowTierInOrder) {
  // Timers far beyond the ring window (> 2^16 ticks) interleaved with near
  // activity: overflow-tier merging must preserve (time, lane, seq) order.
  const sim::LogP params{2, 1, 1, 4};
  std::vector<std::pair<sim::Time, std::int64_t>> fired;
  auto build = [&fired]() {
    ScriptProtocol proto;
    proto.on_begin = [](sim::Context& ctx) {
      ctx.set_timer(1, 1 << 20, 1);  // far: overflow tier
      ctx.set_timer(2, 1 << 20, 2);  // same far tick: seq tie-break
      ctx.set_timer(3, 5, 3);        // near: ring
      ctx.send(0, 1, 1, 0);
    };
    proto.on_timer_fn = [&fired](sim::Context& ctx, Rank, std::int64_t id) {
      fired.emplace_back(ctx.now(), id);
      if (id == 1) ctx.set_timer(1, ctx.now(), 9);  // re-arm for "now"
    };
    return proto;
  };
  for (sim::QueueKind queue : {sim::QueueKind::kBinaryHeap, sim::QueueKind::kCalendar}) {
    fired.clear();
    ScriptProtocol proto = build();
    sim::Simulator simulator(params, sim::FaultSet::none(4));
    sim::RunOptions options;
    options.queue = queue;
    simulator.run(proto, options);
    const std::vector<std::pair<sim::Time, std::int64_t>> expected = {
        {5, 3}, {1 << 20, 1}, {1 << 20, 2}, {1 << 20, 9}};
    EXPECT_EQ(fired, expected) << "queue=" << static_cast<int>(queue);
  }
}

TEST(Simulator, QueueKindsProduceIdenticalResults) {
  const sim::LogP params{2, 1, 1, 1024};
  const topo::Tree tree = topo::make_binomial_interleaved(params.P);
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  support::Xoshiro256ss rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const sim::FaultSet faults = sim::FaultSet::random_fraction(params.P, 0.02, rng);
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    options.queue = sim::QueueKind::kBinaryHeap;
    proto::CorrectedTreeBroadcast heap_protocol(tree, config);
    sim::Simulator heap_sim(params, faults);
    const sim::RunResult heap = heap_sim.run(heap_protocol, options);
    options.queue = sim::QueueKind::kCalendar;
    proto::CorrectedTreeBroadcast cal_protocol(tree, config);
    sim::Simulator cal_sim(params, faults);
    const sim::RunResult calendar = cal_sim.run(cal_protocol, options);
    SCOPED_TRACE(testing::Message() << "trial=" << trial);
    expect_same_result(heap, calendar);
  }
}

// --- Workspace reuse --------------------------------------------------------

sim::RunResult run_broadcast(const sim::LogP& params, const sim::FaultSet& faults,
                             sim::Workspace* workspace) {
  const topo::Tree tree = topo::make_binomial_interleaved(params.P);
  proto::CorrectionConfig config;
  config.kind = proto::CorrectionKind::kChecked;
  config.start = proto::CorrectionStart::kSynchronized;
  config.sync_time = proto::fault_free_dissemination_time(tree, params);
  proto::CorrectedTreeBroadcast protocol(tree, config);
  sim::Simulator simulator(params, faults);
  sim::RunOptions options;
  options.keep_per_rank_detail = true;
  return workspace ? simulator.run(protocol, options, *workspace)
                   : simulator.run(protocol, options);
}

TEST(Workspace, ReuseIsBitIdenticalToFresh) {
  support::Xoshiro256ss rng(11);
  sim::Workspace reused;
  for (int trial = 0; trial < 4; ++trial) {
    const sim::LogP params{2, 1, 1, 300};
    const sim::FaultSet faults = sim::FaultSet::random_fraction(params.P, 0.05, rng);
    const sim::RunResult fresh = run_broadcast(params, faults, nullptr);
    const sim::RunResult warm = run_broadcast(params, faults, &reused);
    SCOPED_TRACE(testing::Message() << "trial=" << trial);
    expect_same_result(fresh, warm);
  }
}

TEST(Workspace, ReuseAcrossDifferentSizes) {
  // Shrinking then regrowing P must not leak state between runs.
  sim::Workspace reused;
  support::Xoshiro256ss rng(13);
  for (Rank procs : {300, 64, 300, 511}) {
    const sim::LogP params{2, 1, 1, procs};
    const sim::FaultSet faults =
        sim::FaultSet::random_fraction(procs, 0.05, rng);
    const sim::RunResult fresh = run_broadcast(params, faults, nullptr);
    const sim::RunResult warm = run_broadcast(params, faults, &reused);
    SCOPED_TRACE(testing::Message() << "procs=" << procs);
    expect_same_result(fresh, warm);
  }
}

TEST(Workspace, SurvivesAbortedRun) {
  // A run killed by the max_events guard leaves the workspace dirty; the
  // next run must hard-clear and still be bit-identical to a fresh one.
  const sim::LogP params{2, 1, 1, 64};
  sim::Workspace reused;
  {
    ScriptProtocol runaway;
    runaway.on_begin = [](sim::Context& ctx) { ctx.set_timer(0, 1, 1); };
    runaway.on_timer_fn = [](sim::Context& ctx, Rank, std::int64_t) {
      ctx.set_timer(0, ctx.now() + 1, 1);  // infinite timer chain
    };
    sim::Simulator simulator(params, sim::FaultSet::none(params.P));
    sim::RunOptions options;
    options.max_events = 100;
    EXPECT_THROW(simulator.run(runaway, options, reused), std::runtime_error);
  }
  const sim::FaultSet faults = sim::FaultSet::from_list(params.P, {3, 9});
  const sim::RunResult fresh = run_broadcast(params, faults, nullptr);
  const sim::RunResult warm = run_broadcast(params, faults, &reused);
  expect_same_result(fresh, warm);
}

}  // namespace
}  // namespace ct

// Self-healing membership tests (DESIGN.md §4i): revive-schedule
// determinism, MembershipView / RemappedProtocol / ReplayLog units,
// generation-tagged envelopes, epoch-boundary tree reparation over
// survivors, the continuous crash+revive convergence soak on both
// executors, and the streaming repair coordinator. Registered under the
// `recovery-smoke` ctest label (also `sanitize`, so the asan/tsan presets
// soak the repair paths).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "protocol/tree_broadcast.hpp"
#include "rt/chaos.hpp"
#include "rt/engine.hpp"
#include "rt/envelope.hpp"
#include "rt/harness.hpp"
#include "rt/membership.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

proto::CorrectionConfig make_correction(proto::CorrectionKind kind,
                                        int distance = 4) {
  proto::CorrectionConfig config;
  config.kind = kind;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = distance;
  return config;
}

std::vector<char> no_failures(Rank procs) {
  return std::vector<char>(static_cast<std::size_t>(procs), 0);
}

// --- revive schedules -------------------------------------------------------

TEST(ReviveSchedule, IsAPureFunctionOfSeedCrashEpochAndRank) {
  ChaosOptions options;
  options.seed = 0xFEEDu;
  options.revive_fraction = 0.5;
  options.revive_after_ns = 1'000'000;
  options.revive_jitter_ns = 500'000;
  const ChaosPlan a(options);
  const ChaosPlan b(options);  // independent instance, same options
  bool some_scheduled = false;
  bool some_skipped = false;
  for (std::int64_t epoch = 0; epoch < 8; ++epoch) {
    for (Rank r = 0; r < 64; ++r) {
      const std::int64_t delay = a.revive_after_ns(epoch, r);
      ASSERT_EQ(delay, b.revive_after_ns(epoch, r));
      if (r == 0) {
        // Rank 0 never crashes, so it never needs a revive schedule either.
        EXPECT_EQ(delay, -1);
      }
      if (delay >= 0) {
        some_scheduled = true;
        EXPECT_GE(delay, options.revive_after_ns);
        EXPECT_LE(delay, options.revive_after_ns + options.revive_jitter_ns);
      } else {
        some_skipped = true;
      }
    }
  }
  // At 50% both branches of the gate must be realised over 8x64 draws.
  EXPECT_TRUE(some_scheduled);
  EXPECT_TRUE(some_skipped);
}

TEST(ReviveSchedule, FractionGatesAndOverridesWin) {
  EXPECT_EQ(ChaosPlan{}.revive_after_ns(0, 5), -1);  // default: never
  EXPECT_FALSE(ChaosPlan{}.revives_enabled());

  ChaosOptions always;
  always.revive_fraction = 1.0;
  always.revive_after_ns = 42;
  const ChaosPlan all(always);
  EXPECT_TRUE(all.revives_enabled());
  for (Rank r = 1; r < 32; ++r) {
    EXPECT_EQ(all.revive_after_ns(3, r), 42);
  }

  ChaosPlan overrides;
  overrides.revive_after(7, 1000);
  overrides.revive_after(9, -1);  // pinned dead for good
  EXPECT_TRUE(overrides.revives_enabled());
  EXPECT_EQ(overrides.revive_after_ns(0, 7), 1000);
  EXPECT_EQ(overrides.revive_after_ns(5, 7), 1000);  // any crash epoch
  EXPECT_EQ(overrides.revive_after_ns(0, 9), -1);
  EXPECT_EQ(overrides.revive_after_ns(0, 8), -1);  // no fraction, no override
}

// --- membership views -------------------------------------------------------

TEST(MembershipView, IdentityMapsEveryRankToItself) {
  const MembershipView view = MembershipView::identity(8);
  EXPECT_TRUE(view.is_identity());
  EXPECT_EQ(view.num_global(), 8);
  EXPECT_EQ(view.num_live(), 8);
  EXPECT_EQ(view.generation(), 0);
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(view.global_of(r), r);
    EXPECT_EQ(view.dense_of(r), r);
    EXPECT_TRUE(view.is_live(r));
  }
}

TEST(MembershipView, OverSurvivorsCompactsTheDead) {
  std::vector<char> dead(8, 0);
  dead[2] = dead[5] = 1;
  const MembershipView view = MembershipView::over_survivors(dead, 3);
  EXPECT_FALSE(view.is_identity());
  EXPECT_EQ(view.num_global(), 8);
  EXPECT_EQ(view.num_live(), 6);
  EXPECT_EQ(view.generation(), 3);
  // Dense ids are the survivors in global order.
  const std::vector<Rank> expected_live = {0, 1, 3, 4, 6, 7};
  EXPECT_EQ(view.live(), expected_live);
  for (Rank d = 0; d < view.num_live(); ++d) {
    EXPECT_EQ(view.global_of(d), expected_live[static_cast<std::size_t>(d)]);
    EXPECT_EQ(view.dense_of(view.global_of(d)), d);
  }
  EXPECT_EQ(view.dense_of(2), topo::kNoRank);
  EXPECT_EQ(view.dense_of(5), topo::kNoRank);
  EXPECT_FALSE(view.is_live(2));
  EXPECT_TRUE(view.is_live(3));
}

TEST(MembershipView, AllRevivedCollapsesBackToIdentityButKeepsGeneration) {
  const MembershipView view =
      MembershipView::over_survivors(std::vector<char>(8, 0), 5);
  EXPECT_TRUE(view.is_identity());  // the no-failure fast path is restored
  EXPECT_EQ(view.generation(), 5);  // ... but stale mail still gets dropped
  EXPECT_EQ(view.num_live(), 8);
}

// --- replay log -------------------------------------------------------------

TEST(ReplayLog, CoversAContiguousSuffixAndEvictsAtCapacity) {
  ReplayLog log(4);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.covers(0));
  for (std::int64_t e = 10; e < 16; ++e) log.append(e, e * 100);
  EXPECT_EQ(log.size(), 4u);  // 10 and 11 evicted by the bound
  EXPECT_EQ(log.first_epoch(), 12);
  EXPECT_EQ(log.last_epoch(), 15);
  EXPECT_FALSE(log.covers(11));
  EXPECT_TRUE(log.covers(12));
  EXPECT_TRUE(log.covers(15));
  EXPECT_FALSE(log.covers(16));
  EXPECT_EQ(log.payload_of(13), 1300);
}

TEST(ReplayLog, TruncatesAndRejectsOutOfOrderEpochs) {
  ReplayLog log(16);
  for (std::int64_t e = 0; e < 6; ++e) log.append(e, e);
  log.truncate_below(4);
  EXPECT_EQ(log.first_epoch(), 4);
  EXPECT_TRUE(log.covers(5));
  EXPECT_FALSE(log.covers(3));
  EXPECT_THROW(log.append(2, 0), std::logic_error);  // epochs only move forward
  log.clear();  // quiescence truncation
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.covers(5));
}

// --- generation-tagged envelopes -------------------------------------------

TEST(EnvelopeTag, GenerationZeroKeepsThePrePr9WireFormat) {
  // gen 0 => tag == epoch bit-for-bit, so runs that never repair are
  // unchanged on the wire (the A/B latency guard depends on this).
  for (const std::int64_t epoch : {0LL, 1LL, 77LL, 0xFFFFFFLL}) {
    EXPECT_EQ(Envelope::make_tag(epoch, 0), static_cast<std::int32_t>(epoch));
  }
}

TEST(EnvelopeTag, PacksEpochAndGenerationSideBySide) {
  const std::int32_t tag = Envelope::make_tag(0x123456, 0xAB);
  Envelope envelope(sim::Message{.src = 0, .dst = 1}, tag);
  EXPECT_EQ(envelope.epoch(), 0x123456);
  EXPECT_EQ(envelope.generation(), 0xAB);
  EXPECT_EQ(envelope.tag(), tag);
  // The 24-bit epoch window wraps; the generation stays intact.
  const std::int32_t wrapped = Envelope::make_tag(0x1000001, 3);
  Envelope w(sim::Message{}, wrapped);
  EXPECT_EQ(w.epoch(), 1);
  EXPECT_EQ(w.generation(), 3);
  // Generations wrap mod 256 on the engine side; make_tag masks the same way.
  EXPECT_EQ(Envelope::make_tag(5, 256), Envelope::make_tag(5, 0));
}

// --- engine repair API ------------------------------------------------------

TEST(RepairApi, RequiresRepairModeAndGuardsTheRoot) {
  const Rank procs = 8;
  EngineOptions plain;
  plain.workers = 2;
  Engine engine(procs, no_failures(procs), plain);
  EXPECT_THROW(engine.repair_membership({1}, {}), std::logic_error);

  EngineOptions repairing = plain;
  repairing.repair = true;
  std::vector<char> failed = no_failures(procs);
  failed[6] = 1;  // failed at construction: has no thread, can never revive
  Engine fixer(procs, failed, repairing);
  EXPECT_THROW(fixer.repair_membership({0}, {}), std::invalid_argument);
  EXPECT_THROW(fixer.repair_membership({}, {6}), std::invalid_argument);
  EXPECT_THROW(fixer.repair_membership({procs}, {}), std::invalid_argument);

  // Initial membership is the identity even with construction failures: the
  // first repair compacts over *all* dead ranks.
  EXPECT_TRUE(fixer.membership().is_identity());
  EXPECT_EQ(fixer.generation(), 0);
  EXPECT_TRUE(fixer.is_dead(6));

  EXPECT_FALSE(fixer.repair_membership({}, {}));  // no change, no generation
  EXPECT_TRUE(fixer.repair_membership({3}, {}));
  EXPECT_EQ(fixer.generation(), 1);
  EXPECT_TRUE(fixer.is_dead(3));
  EXPECT_EQ(fixer.live_count(), 6);
  EXPECT_EQ(fixer.membership().num_live(), 6);
  EXPECT_FALSE(fixer.membership().is_live(3));
  EXPECT_FALSE(fixer.membership().is_live(6));

  EXPECT_FALSE(fixer.repair_membership({3}, {}));  // already dead: no change
  EXPECT_TRUE(fixer.repair_membership({}, {3}));   // chaos-dead ranks revive
  EXPECT_EQ(fixer.generation(), 2);
  EXPECT_FALSE(fixer.is_dead(3));
  EXPECT_EQ(fixer.live_count(), 7);
}

TEST(RepairApi, GenerationWrapsModulo256) {
  EngineOptions options;
  options.workers = 2;
  options.repair = true;
  Engine engine(8, no_failures(8), options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.repair_membership(i % 2 == 0 ? std::vector<Rank>{1}
                                                    : std::vector<Rank>{},
                                         i % 2 == 0 ? std::vector<Rank>{}
                                                    : std::vector<Rank>{1}));
    ASSERT_EQ(engine.generation(), (i + 1) & 0xFF);
    ASSERT_EQ(engine.membership().generation(), engine.generation());
  }
}

// --- epoch-boundary tree reparation ----------------------------------------

// A dead inner node of an in-order binomial tree leaves its whole
// *contiguous* subtree uncolored — a ring gap wider than distance-1
// opportunistic correction can bridge, so without repair every epoch
// re-runs the gap and stays degraded. An epoch-boundary rebuild over the
// survivors removes the gap entirely, so the very next epoch is clean —
// on both executors.
TEST(Repair, RebuildsTheTreeOverSurvivorsAfterAnInnerNodeDeath) {
  const Rank procs = 32;
  topo::TreeSpec tree_spec;
  tree_spec.kind = topo::TreeKind::kBinomialInOrder;  // contiguous subtrees
  const topo::Tree tree = topo::make_tree(tree_spec, procs);
  // Pick a non-root inner node with at least 3 descendants: victim +
  // subtree is a contiguous uncolored run of >= 4, defeating distance 1.
  Rank victim = topo::kNoRank;
  for (const Rank candidate : tree.children(0)) {
    int descendants = 0;
    for (Rank r = 1; r < procs; ++r) {
      for (Rank cur = r; cur != 0; cur = tree.parent(cur)) {
        if (cur == candidate && r != candidate) {
          ++descendants;
          break;
        }
      }
    }
    if (descendants >= 3) victim = candidate;
  }
  ASSERT_NE(victim, topo::kNoRank);

  for (const Threading threading :
       {Threading::kSharded, Threading::kThreadPerRank}) {
    SCOPED_TRACE(threading == Threading::kSharded ? "sharded" : "tpr");
    EngineOptions options;
    options.threading = threading;
    if (threading == Threading::kSharded) options.workers = 4;
    options.repair = true;
    options.epoch_deadline = std::chrono::milliseconds(250);
    Engine engine(procs, no_failures(procs), options);
    ChaosPlan plan;
    plan.kill_at_ns(victim, 0);
    engine.set_chaos(std::move(plan));
    const auto correction =
        make_correction(proto::CorrectionKind::kOpportunistic, /*distance=*/1);

    // Epoch 0: the victim dies before forwarding; the distance-1 ring
    // cannot bridge its subtree-wide gap, so the epoch ends degraded at
    // the deadline.
    proto::CorrectedTreeBroadcast first(tree, correction);
    const EpochResult injured =
        engine.run_epoch(first, std::chrono::seconds(60));
    EXPECT_TRUE(injured.degraded());
    const std::vector<Rank> victims = {victim};
    EXPECT_EQ(injured.crashed_ranks, victims);

    // Repair at the boundary: persist the death, rebuild over survivors.
    ASSERT_TRUE(engine.repair_membership(injured.crashed_ranks, {}));
    const MembershipView& view = engine.membership();
    ASSERT_EQ(view.num_live(), procs - 1);
    const topo::Tree repaired =
        topo::make_survivor_tree(tree_spec, view.num_live());

    // Epochs 1..3: same weak correction, yet clean — the gap is gone.
    for (int epoch = 1; epoch <= 3; ++epoch) {
      auto protocol =
          std::make_unique<proto::CorrectedTreeBroadcast>(repaired, correction);
      RemappedProtocol remapped(std::move(protocol), view);
      const EpochResult result =
          engine.run_epoch(remapped, std::chrono::seconds(60));
      EXPECT_FALSE(result.degraded()) << "epoch " << epoch;
      EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
      EXPECT_TRUE(result.crashed_ranks.empty()) << "epoch " << epoch;
    }
  }
}

// --- continuous crash + revive convergence (the PR9 acceptance gate) --------

void soak(Threading threading, Rank procs, std::int64_t epochs) {
  EngineOptions options;
  options.threading = threading;
  if (threading == Threading::kSharded) options.workers = 4;
  options.repair = true;
  Engine engine(procs, no_failures(procs), options);
  ChaosOptions chaos;
  chaos.seed = 0x9E0Cu;
  chaos.crash_fraction = 0.02;
  chaos.revive_fraction = 1.0;
  chaos.revive_after_ns = 0;  // eligible at the very next boundary
  engine.set_chaos(ChaosPlan(chaos));

  const topo::TreeSpec tree_spec;
  std::int32_t cached_generation = 0;
  std::unique_ptr<topo::Tree> cached;
  const MembershipProtocolFactory factory =
      [&](const MembershipView& view) -> std::unique_ptr<sim::Protocol> {
    if (!cached || cached_generation != view.generation()) {
      cached = std::make_unique<topo::Tree>(
          topo::make_survivor_tree(tree_spec, view.num_live()));
      cached_generation = view.generation();
    }
    return std::make_unique<proto::CorrectedTreeBroadcast>(
        *cached, make_correction(proto::CorrectionKind::kChecked));
  };

  HarnessOptions harness;
  harness.warmup = 2;
  harness.iterations = epochs;
  // 512 thread-per-rank threads under a sanitizer run ~15x slow; the soak
  // asserts timeouts == 0, so give each epoch headroom instead of letting
  // instrumentation overhead masquerade as a recovery failure.
  harness.epoch_timeout = std::chrono::seconds(120);
  const HarnessResult result = rt::measure_recovery(engine, factory, harness);

  EXPECT_EQ(result.iterations, epochs);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_EQ(result.incomplete, 0);
  // 2% of `procs` per epoch across warmup+measured epochs: deaths, repairs
  // and (with revive-frac=1) rejoins are all but certain.
  EXPECT_GT(result.ranks_crashed, 0);
  EXPECT_GT(result.repairs, 0);
  EXPECT_GT(result.rejoins, 0);
  // With revive-after 0 every outage lasts exactly one epoch, which the
  // 64-epoch replay log always covers: every rejoin replays one missed
  // epoch and nobody needs the state-transfer fallback.
  EXPECT_EQ(result.state_transfers, 0);
  EXPECT_EQ(result.replayed_epochs, result.rejoins);
  // The acceptance gate: the service re-converges within k <= 3 epochs of
  // the last injected fault.
  EXPECT_LE(result.epochs_to_converge, 3);
}

TEST(Recovery, ContinuousCrashReviveConvergesSharded) {
  soak(Threading::kSharded, 512, 20);
}

TEST(Recovery, ContinuousCrashReviveConvergesThreadPerRank) {
  soak(Threading::kThreadPerRank, 512, 6);
}

// --- streaming repair -------------------------------------------------------

TEST(StreamRepair, RetiresCorpsesAtAdmissionAndReadmitsRevived) {
  const Rank procs = 256;
  EngineOptions options;
  options.workers = 4;
  options.repair = true;
  Engine engine(procs, no_failures(procs), options);
  ChaosOptions chaos;
  chaos.seed = 0x57EAu;
  chaos.crash_fraction = 0.05;
  chaos.revive_fraction = 1.0;
  // A multi-epoch outage: admissions during the 5 ms the rank is down see
  // it as dead_at_start (revive-after 0 would readmit before any epoch
  // could observe the corpse).
  chaos.revive_after_ns = 5'000'000;
  engine.set_chaos(ChaosPlan(chaos));

  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const ProtocolFactory factory = [&]() -> std::unique_ptr<sim::Protocol> {
    return std::make_unique<proto::CorrectedTreeBroadcast>(
        tree, make_correction(proto::CorrectionKind::kChecked));
  };
  StreamOptions stream;
  stream.epochs = 160;
  stream.window = 4;
  const StreamHarnessResult result = measure_stream(engine, factory, stream);

  EXPECT_EQ(result.epochs, stream.epochs);
  EXPECT_EQ(result.timeouts, 0);
  EXPECT_GT(result.ranks_crashed, 0);
  // The coordinator persisted deaths (bumping the generation) and later
  // readmitted the revived ranks.
  EXPECT_GT(result.repairs, 0);
  EXPECT_GT(result.rejoins, 0);
  EXPECT_EQ(result.state_transfers, result.rejoins);  // streams never replay
  std::int64_t dead_at_start = 0;
  for (const StreamEpoch& epoch : result.raw.epochs) {
    dead_at_start += epoch.dead_at_start;
    // Corpses are excluded from the live set, never double-counted.
    EXPECT_LE(epoch.dead_at_start + epoch.crashed, procs);
  }
  EXPECT_GT(dead_at_start, 0);
  EXPECT_GT(result.deliveries, 0);
}

}  // namespace
}  // namespace ct::rt

// Corrected Tree broadcast + correction algorithms: fault-free guarantees,
// Lemma 2 / Corollary 1 / Lemma 3 agreement between analysis and simulation,
// per-algorithm coloring guarantees under fault injection, and the §3.2.1
// k-ary tolerance bound.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/bounds.hpp"
#include "experiment/runner.hpp"
#include "protocol/tree_broadcast.hpp"
#include "sim/simulator.hpp"
#include "topology/factory.hpp"

namespace ct::proto {
namespace {

using exp::ProtocolKind;
using exp::run_once;
using exp::Scenario;
using topo::Rank;

Scenario base_scenario(const std::string& tree, Rank procs, sim::Time L = 2,
                       sim::Time o = 1) {
  Scenario scenario;
  scenario.params = sim::LogP{L, o, /*g=*/o, procs};
  scenario.tree = topo::parse_tree_spec(tree);
  return scenario;
}

// --- Fault-free dissemination --------------------------------------------------

class FaultFreeTreeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultFreeTreeTest, ColorsEveryoneWithMinimalMessages) {
  for (Rank procs : {1, 2, 33, 256, 1000}) {
    Scenario scenario = base_scenario(GetParam(), procs);
    scenario.correction.kind = CorrectionKind::kNone;
    const sim::RunResult result = run_once(scenario, 1);
    EXPECT_TRUE(result.fully_colored()) << GetParam() << " P=" << procs;
    EXPECT_EQ(result.total_messages, procs - 1);  // exactly one per non-root
    EXPECT_EQ(result.coloring_latency, result.quiescence_latency);
  }
}

INSTANTIATE_TEST_SUITE_P(Trees, FaultFreeTreeTest,
                         ::testing::Values("binomial", "binomial-inorder", "kary:4",
                                           "lame:2", "optimal"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':' || ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(FaultFreeDissemination, OptimalTreeIsFastest) {
  // Fig. 7 ordering: optimal < lame(2) < binomial in latency at L=2, o=1.
  const sim::LogP p{2, 1, 1, 4096};
  const sim::Time binomial =
      fault_free_dissemination_time(topo::make_binomial_interleaved(4096), p);
  const sim::Time lame = fault_free_dissemination_time(topo::make_lame(4096, 2), p);
  const sim::Time optimal = fault_free_dissemination_time(topo::make_optimal(4096, 1, 2), p);
  EXPECT_LT(optimal, lame);
  EXPECT_LT(lame, binomial);
}

TEST(FaultFreeDissemination, OptimalTreeMatchesItsSchedule) {
  // §3.2.3: T_t colors R(t + 2o + L)-ish processes by construction; inverse
  // check: the simulated latency t satisfies R(t) >= P > R(t - o).
  // (Aligned parameters, L % o == 0, where the slotted recurrence applies.)
  const sim::LogP p{4, 2, 2, 500};
  const sim::Time t =
      fault_free_dissemination_time(topo::make_optimal(500, p.o, p.L), p);
  EXPECT_GE(topo::optimal_ready_to_send(p.o, p.L, t), 500);
  EXPECT_LT(topo::optimal_ready_to_send(p.o, p.L, t - p.o), 500);
}

TEST(FaultFreeDissemination, LameOptimalWhenParametersMatch) {
  // §3.2.3/Fig. 5: with 2o + L = k the Lamé tree is latency-optimal, i.e.
  // as fast as the optimal tree.
  const sim::LogP p{1, 1, 1, 512};  // 2o+L = 3
  const sim::Time lame = fault_free_dissemination_time(topo::make_lame(512, 3), p);
  const sim::Time optimal =
      fault_free_dissemination_time(topo::make_optimal(512, p.o, p.L), p);
  EXPECT_EQ(lame, optimal);
}

// --- Lemma 2 / Corollary 1 across LogP parameters -------------------------------

class CheckedLemmaTest : public ::testing::TestWithParam<std::tuple<sim::Time, sim::Time>> {
};

TEST_P(CheckedLemmaTest, SyncCheckedMatchesClosedForms) {
  const auto [o, L] = GetParam();
  const Rank procs = 512;
  Scenario scenario = base_scenario("binomial", procs, L, o);
  scenario.correction.kind = CorrectionKind::kChecked;
  scenario.correction.start = CorrectionStart::kSynchronized;
  const sim::RunResult result = run_once(scenario, 1);
  ASSERT_TRUE(result.fully_colored());
  const sim::LogP params = scenario.params;
  EXPECT_EQ(result.correction_time(),
            analysis::checked_correction_fault_free_latency(params))
      << "o=" << o << " L=" << L;
  // Total = (P-1) tree messages + M_SCC correction messages per process.
  EXPECT_EQ(result.total_messages,
            (procs - 1) + procs * analysis::checked_correction_fault_free_messages(params))
      << "o=" << o << " L=" << L;
  EXPECT_EQ(result.dissemination_gaps.max_gap, 0);
}

INSTANTIATE_TEST_SUITE_P(LogPGrid, CheckedLemmaTest,
                         ::testing::Values(std::tuple<sim::Time, sim::Time>{1, 2},
                                           std::tuple<sim::Time, sim::Time>{1, 1},
                                           std::tuple<sim::Time, sim::Time>{1, 5},
                                           std::tuple<sim::Time, sim::Time>{2, 3},
                                           std::tuple<sim::Time, sim::Time>{2, 8},
                                           std::tuple<sim::Time, sim::Time>{3, 2}));

// --- Checked correction under faults ---------------------------------------------

struct FaultCase {
  std::string tree;
  Rank procs;
  Rank faults;
};

class CheckedFaultsTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(CheckedFaultsTest, AlwaysColorsAllLiveProcesses) {
  const auto& param = GetParam();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario scenario = base_scenario(param.tree, param.procs);
    scenario.correction.kind = CorrectionKind::kChecked;
    scenario.correction.start = CorrectionStart::kSynchronized;
    scenario.fault_count = param.faults;
    const sim::RunResult result = run_once(scenario, seed);
    EXPECT_TRUE(result.fully_colored())
        << param.tree << " P=" << param.procs << " f=" << param.faults
        << " seed=" << seed << " left " << result.uncolored_live << " uncolored";

    // Lemma 3: the correction time lies within the g_max bounds.
    const auto gap = result.dissemination_gaps.max_gap;
    EXPECT_GE(result.correction_time(),
              analysis::checked_correction_latency_lower_bound(scenario.params, gap));
    EXPECT_LE(result.correction_time(),
              analysis::checked_correction_latency_upper_bound(scenario.params, gap));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultGrid, CheckedFaultsTest,
    ::testing::Values(FaultCase{"binomial", 256, 1}, FaultCase{"binomial", 256, 8},
                      FaultCase{"binomial", 256, 64}, FaultCase{"binomial-inorder", 256, 4},
                      FaultCase{"kary:4", 256, 8}, FaultCase{"lame:2", 333, 10},
                      FaultCase{"optimal", 512, 16}, FaultCase{"binomial", 64, 32}),
    [](const auto& info) {
      std::string name = info.param.tree + "_" + std::to_string(info.param.procs) + "_f" +
                         std::to_string(info.param.faults);
      for (char& ch : name) {
        if (ch == ':' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(CheckedCorrection, OverlappedAlsoColorsEverything) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario scenario = base_scenario("binomial", 256);
    scenario.correction.kind = CorrectionKind::kChecked;
    scenario.correction.start = CorrectionStart::kOverlapped;
    scenario.fault_count = 16;
    const sim::RunResult result = run_once(scenario, seed);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

// --- Opportunistic correction -----------------------------------------------------

TEST(Opportunistic, GuaranteeFollowsGapSize) {
  // Construct a worst case with the in-order tree: killing an inner node of
  // the in-order binomial tree leaves a contiguous gap the size of its
  // subtree. Opportunistic correction with both directions covers gaps of
  // at most 2d.
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_inorder(procs);
  // Rank 33 in a 64-rank in-order binomial tree roots a subtree of 16..?
  // Use a rank with subtree size 4 < 2d for d=2, then one with size > 2d.
  Rank small_victim = topo::kNoRank;
  Rank big_victim = topo::kNoRank;
  for (Rank r = 1; r < procs; ++r) {
    if (tree.subtree_size(r) == 4 && small_victim == topo::kNoRank) small_victim = r;
    if (tree.subtree_size(r) >= 8 && big_victim == topo::kNoRank && r != 1) big_victim = r;
  }
  ASSERT_NE(small_victim, topo::kNoRank);
  ASSERT_NE(big_victim, topo::kNoRank);

  auto run_with_victim = [&](Rank victim, int distance) {
    CorrectionConfig config;
    config.kind = CorrectionKind::kOpportunistic;
    config.start = CorrectionStart::kSynchronized;
    config.distance = distance;
    config.sync_time = fault_free_dissemination_time(tree, sim::LogP{2, 1, 1, procs});
    CorrectedTreeBroadcast protocol(tree, config);
    sim::Simulator simulator(sim::LogP{2, 1, 1, procs},
                             sim::FaultSet::from_list(procs, {victim}));
    return simulator.run(protocol);
  };

  // Gap of 4 (subtree), d=2: covered from both sides.
  EXPECT_TRUE(run_with_victim(small_victim, 2).fully_colored());
  // Gap of >= 8, d=2: cannot be covered; interior stays uncolored.
  EXPECT_FALSE(run_with_victim(big_victim, 2).fully_colored());
  // Same big gap, d large enough: covered again.
  EXPECT_TRUE(run_with_victim(big_victim, 8).fully_colored());
}

TEST(Opportunistic, KAryToleranceBound) {
  // §3.2.1: in a k-ary interleaved tree, up to k-1 failures leave every
  // k-th process colored; opportunistic correction with d >= k-1 then
  // colors all (tested over many random placements).
  for (int k : {2, 4}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      Scenario scenario = base_scenario("kary:" + std::to_string(k), 256);
      scenario.correction.kind = CorrectionKind::kOpportunistic;
      scenario.correction.start = CorrectionStart::kSynchronized;
      scenario.correction.distance = k - 1 > 0 ? k - 1 : 1;
      scenario.fault_count = static_cast<Rank>(
          analysis::kary_guaranteed_failure_tolerance(k));
      if (scenario.fault_count == 0) continue;
      const sim::RunResult result = run_once(scenario, seed);
      EXPECT_TRUE(result.fully_colored()) << "k=" << k << " seed=" << seed;
      EXPECT_LT(result.dissemination_gaps.max_gap, k);
    }
  }
}

TEST(Opportunistic, EveryKthColoredAfterDissemination) {
  // The structural half of the §3.2.1 guarantee, independent of correction:
  // with k-1 failures the dissemination snapshot has max gap < k.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario scenario = base_scenario("kary:4", 341);
    scenario.correction.kind = CorrectionKind::kOpportunistic;
    scenario.correction.start = CorrectionStart::kSynchronized;
    scenario.correction.distance = 3;
    scenario.fault_count = 3;
    const sim::RunResult result = run_once(scenario, seed);
    ASSERT_TRUE(result.has_dissemination_snapshot);
    EXPECT_LT(result.dissemination_gaps.max_gap, 4) << "seed=" << seed;
  }
}

TEST(OptimizedOpportunistic, NeverMoreMessagesThanPlain) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Scenario plain = base_scenario("binomial", 256);
    plain.correction.kind = CorrectionKind::kOpportunistic;
    plain.correction.start = CorrectionStart::kSynchronized;
    plain.correction.distance = 4;
    plain.fault_count = 5;

    Scenario optimized = plain;
    optimized.correction.kind = CorrectionKind::kOptimizedOpportunistic;

    const sim::RunResult plain_result = run_once(plain, seed);
    const sim::RunResult optimized_result = run_once(optimized, seed);
    EXPECT_LE(optimized_result.total_messages, plain_result.total_messages)
        << "seed=" << seed;
    // §3.3: the optimization preserves non-faulty liveness.
    EXPECT_EQ(optimized_result.uncolored_live, plain_result.uncolored_live)
        << "seed=" << seed;
  }
}

TEST(OptimizedOpportunistic, AtMostCheckedMessagesFaultFree) {
  // §4.1: "Optimized opportunistic correction sends at most as many
  // messages as checked correction."
  for (const char* tree : {"binomial", "kary:4", "lame:2", "optimal"}) {
    Scenario checked = base_scenario(tree, 512);
    checked.correction.kind = CorrectionKind::kChecked;
    checked.correction.start = CorrectionStart::kSynchronized;

    Scenario optimized = base_scenario(tree, 512);
    optimized.correction.kind = CorrectionKind::kOptimizedOpportunistic;
    optimized.correction.start = CorrectionStart::kOverlapped;
    optimized.correction.distance = 4;

    EXPECT_LE(run_once(optimized, 1).total_messages, run_once(checked, 1).total_messages)
        << tree;
  }
}

TEST(OptimizedOpportunistic, LeftOnlyStillColorsSmallGaps) {
  // The §4.4 prototype's single-direction mode: each process covers d ranks
  // below itself, so gaps up to d are colored from above.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Scenario scenario = base_scenario("binomial", 256);
    scenario.correction.kind = CorrectionKind::kOptimizedOpportunistic;
    scenario.correction.start = CorrectionStart::kOverlapped;
    scenario.correction.directions = CorrectionDirections::kLeftOnly;
    scenario.correction.distance = 4;
    scenario.fault_count = 3;
    const sim::RunResult result = run_once(scenario, seed);
    if (result.has_dissemination_snapshot &&
        result.dissemination_gaps.max_gap > 4) {
      continue;  // beyond the single-direction guarantee
    }
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

// --- Delayed correction -------------------------------------------------------------

TEST(Delayed, OneMessagePerProcessFaultFree) {
  // §3.3 + Fig. 6's "Minimum" line: delayed correction reaches the
  // one-message-per-process floor when nothing fails.
  const Rank procs = 256;
  Scenario scenario = base_scenario("binomial", procs);
  scenario.correction.kind = CorrectionKind::kDelayed;
  scenario.correction.start = CorrectionStart::kSynchronized;
  scenario.correction.delay = 2 * scenario.params.message_cost();
  const sim::RunResult result = run_once(scenario, 1);
  EXPECT_TRUE(result.fully_colored());
  EXPECT_EQ(result.total_messages, (procs - 1) + procs);  // tree + 1 each
}

TEST(Delayed, ProbesRightwardAcrossGapsAndRecovers) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Scenario scenario = base_scenario("binomial", 256);
    scenario.correction.kind = CorrectionKind::kDelayed;
    scenario.correction.start = CorrectionStart::kSynchronized;
    scenario.correction.delay = 2 * scenario.params.message_cost();
    scenario.fault_count = 10;
    const sim::RunResult result = run_once(scenario, seed);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

TEST(Delayed, FailureCostsLatencyNotMessagesElsewhere) {
  // §3.3: "The reduced overhead in the fault-free case comes at the cost of
  // a higher latency when a failure does occur."
  Scenario clean = base_scenario("binomial", 256);
  clean.correction.kind = CorrectionKind::kDelayed;
  clean.correction.start = CorrectionStart::kSynchronized;
  clean.correction.delay = 2 * clean.params.message_cost();

  Scenario faulty = clean;
  faulty.fault_count = 5;

  const sim::RunResult clean_result = run_once(clean, 3);
  const sim::RunResult faulty_result = run_once(faulty, 3);
  EXPECT_GT(faulty_result.quiescence_latency, clean_result.quiescence_latency);
}

// --- Failure-proof correction ---------------------------------------------------------

TEST(FailureProof, ColorsAllFaultFreeWithAcks) {
  const Rank procs = 128;
  Scenario scenario = base_scenario("binomial", procs);
  scenario.correction.kind = CorrectionKind::kFailureProof;
  scenario.correction.start = CorrectionStart::kSynchronized;
  const sim::RunResult result = run_once(scenario, 1);
  EXPECT_TRUE(result.fully_colored());
  // Probes demand replies: strictly more traffic than checked would need.
  EXPECT_GT(result.total_messages, 3 * procs);
}

TEST(FailureProof, SurvivesStaticFaults) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Scenario scenario = base_scenario("binomial", 256);
    scenario.correction.kind = CorrectionKind::kFailureProof;
    scenario.correction.start = CorrectionStart::kSynchronized;
    scenario.fault_count = 30;
    const sim::RunResult result = run_once(scenario, seed);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

TEST(FailureProof, SurvivesDeathDuringCorrection) {
  // Kill one additional participant right after correction starts; checked
  // correction's guarantee explicitly excludes this case, failure-proof
  // (redundancy 2) must still color every process that remains alive.
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  const sim::LogP params{2, 1, 1, procs};
  const sim::Time sync = fault_free_dissemination_time(tree, params);

  for (Rank mid_death : {3, 40, 77, 126}) {
    for (Rank static_death : {10, 60, 100}) {
      if (mid_death == static_death) continue;
      sim::FaultSet faults = sim::FaultSet::from_list(procs, {static_death});
      faults.kill_at(mid_death, sync + 2);  // dies while correcting

      CorrectionConfig config;
      config.kind = CorrectionKind::kFailureProof;
      config.start = CorrectionStart::kSynchronized;
      config.sync_time = sync;
      config.redundancy = 2;
      CorrectedTreeBroadcast protocol(tree, config);
      sim::Simulator simulator(params, faults);
      const sim::RunResult result = simulator.run(protocol);
      EXPECT_TRUE(result.fully_colored())
          << "mid=" << mid_death << " static=" << static_death << " left "
          << result.uncolored_live;
    }
  }
}

// --- Synchronized vs overlapped -----------------------------------------------------

TEST(Overlapped, NoSlowerColoringThanSynchronized) {
  // Overlapped correction starts strictly earlier on every process, so the
  // (fault-free) quiescence cannot be later than sync + its correction.
  Scenario sync = base_scenario("binomial", 512);
  sync.correction.kind = CorrectionKind::kOptimizedOpportunistic;
  sync.correction.start = CorrectionStart::kSynchronized;
  sync.correction.distance = 4;

  Scenario overlapped = sync;
  overlapped.correction.start = CorrectionStart::kOverlapped;

  const sim::RunResult sync_result = run_once(sync, 1);
  const sim::RunResult overlapped_result = run_once(overlapped, 1);
  EXPECT_TRUE(sync_result.fully_colored());
  EXPECT_TRUE(overlapped_result.fully_colored());
  EXPECT_LE(overlapped_result.coloring_latency, sync_result.quiescence_latency);
}

TEST(SyncCorrection, RequiresSyncTime) {
  const topo::Tree tree = topo::make_binomial_interleaved(8);
  CorrectionConfig config;
  config.kind = CorrectionKind::kChecked;
  config.start = CorrectionStart::kSynchronized;
  config.sync_time = 0;
  EXPECT_THROW(CorrectedTreeBroadcast(tree, config), std::invalid_argument);
}

TEST(TreeBroadcast, EarlyCorrectionStillForwardsTreeMessages) {
  // §3.3: a process colored early by a correction message still sends tree
  // messages to its children once the tree message arrives. With overlapped
  // opportunistic correction and a failure, descendants of an
  // early-corrected process must still be tree-colored.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario scenario = base_scenario("binomial", 512);
    scenario.correction.kind = CorrectionKind::kOptimizedOpportunistic;
    scenario.correction.start = CorrectionStart::kOverlapped;
    scenario.correction.distance = 8;
    scenario.fault_count = 3;
    const sim::RunResult result = run_once(scenario, seed);
    EXPECT_TRUE(result.fully_colored()) << "seed=" << seed;
  }
}

// --- Config plumbing ----------------------------------------------------------------

TEST(Config, KindNamesRoundTrip) {
  for (CorrectionKind kind :
       {CorrectionKind::kNone, CorrectionKind::kOpportunistic,
        CorrectionKind::kOptimizedOpportunistic, CorrectionKind::kChecked,
        CorrectionKind::kFailureProof, CorrectionKind::kDelayed}) {
    EXPECT_EQ(parse_correction_kind(correction_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_correction_kind("nope"), std::invalid_argument);
}

TEST(Config, ToStringMentionsParameters) {
  CorrectionConfig config;
  config.kind = CorrectionKind::kOptimizedOpportunistic;
  config.distance = 7;
  config.start = CorrectionStart::kSynchronized;
  const std::string text = config.to_string();
  EXPECT_NE(text.find("opportunistic"), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);
  EXPECT_NE(text.find("sync"), std::string::npos);
}

}  // namespace
}  // namespace ct::proto

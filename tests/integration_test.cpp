// Cross-module integration tests: small-scale versions of the paper's
// qualitative claims, so every figure-level statement has a fast,
// deterministic guard in the test suite.

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "experiment/runner.hpp"
#include "protocol/gossip_tuning.hpp"
#include "topology/factory.hpp"

namespace ct {
namespace {

using exp::Aggregate;
using exp::Scenario;
using topo::Rank;

Scenario tree_scenario(const std::string& tree, Rank procs,
                       proto::CorrectionKind kind, proto::CorrectionStart start) {
  Scenario scenario;
  scenario.params = sim::LogP{2, 1, 1, procs};
  scenario.tree = topo::parse_tree_spec(tree);
  scenario.correction.kind = kind;
  scenario.correction.start = start;
  return scenario;
}

TEST(PaperClaims, Figure1InterleavedCorrectsFasterThanInOrder) {
  // Fig. 1b: with failures, expected correction time of the in-order
  // binomial tree exceeds the interleaved tree's.
  const Rank procs = 1024;
  Scenario interleaved = tree_scenario("binomial", procs, proto::CorrectionKind::kChecked,
                                       proto::CorrectionStart::kSynchronized);
  interleaved.fault_count = 5;
  Scenario inorder = interleaved;
  inorder.tree = topo::parse_tree_spec("binomial-inorder");

  const Aggregate a = exp::run_replicated(interleaved, 60, 1);
  const Aggregate b = exp::run_replicated(inorder, 60, 1);
  EXPECT_LT(a.correction_time.mean(), b.correction_time.mean());
  EXPECT_LT(a.max_gap.mean(), b.max_gap.mean());
}

TEST(PaperClaims, Figure6CorrectedTreesBeatGossipOnMessages) {
  const Rank procs = 512;
  const sim::LogP params{2, 1, 1, procs};

  proto::CorrectionConfig checked;
  checked.kind = proto::CorrectionKind::kChecked;
  const proto::GossipTuneResult tuned =
      proto::tune_gossip_for_latency(params, checked, 5, 3);

  Scenario gossip;
  gossip.params = params;
  gossip.protocol = exp::ProtocolKind::kGossip;
  gossip.gossip.budget = proto::GossipConfig::Budget::kTime;
  gossip.gossip.gossip_time = tuned.gossip_time;
  gossip.gossip.correction = checked;
  gossip.gossip.correction.start = proto::CorrectionStart::kSynchronized;
  gossip.gossip.correction.sync_time = tuned.gossip_time;

  Scenario checked_tree = tree_scenario("binomial", procs, proto::CorrectionKind::kChecked,
                                        proto::CorrectionStart::kSynchronized);
  Scenario opportunistic_tree =
      tree_scenario("binomial", procs, proto::CorrectionKind::kOptimizedOpportunistic,
                    proto::CorrectionStart::kOverlapped);
  opportunistic_tree.correction.distance = 1;

  const Aggregate gossip_result = exp::run_replicated(gossip, 10, 5);
  const Aggregate checked_result = exp::run_replicated(checked_tree, 10, 5);
  const Aggregate opportunistic_result = exp::run_replicated(opportunistic_tree, 10, 5);
  EXPECT_EQ(checked_result.not_fully_colored, 0);
  EXPECT_EQ(opportunistic_result.not_fully_colored, 0);
  EXPECT_EQ(gossip_result.not_fully_colored, 0);
  // "Corrected Trees require significantly less messages for correction
  // than Corrected Gossip" (§4.1): checked trees stay below gossip, and
  // opportunistic(1) trees below half of it (Fig. 6's big gap).
  EXPECT_LT(checked_result.messages_per_process.mean(),
            gossip_result.messages_per_process.mean());
  EXPECT_LT(2 * opportunistic_result.messages_per_process.mean(),
            gossip_result.messages_per_process.mean());
}

TEST(PaperClaims, Figure6MessageCountIndependentOfProcessCount) {
  // §4.1: "For the trees, average number of messages does not depend on the
  // number of processes."
  Scenario small = tree_scenario("binomial", 256, proto::CorrectionKind::kChecked,
                                 proto::CorrectionStart::kSynchronized);
  Scenario large = small;
  large.params.P = 2048;
  const double small_messages =
      exp::run_replicated(small, 3, 1).messages_per_process.mean();
  const double large_messages =
      exp::run_replicated(large, 3, 1).messages_per_process.mean();
  EXPECT_NEAR(small_messages, large_messages, 0.05);
}

TEST(PaperClaims, Figure7AckTreesPayDoubleLatency) {
  const Rank procs = 2048;
  Scenario corrected = tree_scenario("binomial", procs,
                                     proto::CorrectionKind::kChecked,
                                     proto::CorrectionStart::kSynchronized);
  Scenario acked = corrected;
  acked.protocol = exp::ProtocolKind::kAckTree;

  const Aggregate corr = exp::run_replicated(corrected, 1, 1);
  const Aggregate ack = exp::run_replicated(acked, 1, 1);
  // The ack tree traverses the tree twice; checked correction adds only a
  // constant (LFF_SCC = 8) to the one-way latency.
  EXPECT_GT(ack.quiescence_latency.mean(), 1.6 * corr.coloring_latency.mean());
  EXPECT_LT(corr.quiescence_latency.mean(), ack.quiescence_latency.mean());
}

TEST(PaperClaims, Figure8LatencyGrowsWithFaultRate) {
  const Rank procs = 2048;
  Scenario low = tree_scenario("binomial", procs, proto::CorrectionKind::kChecked,
                               proto::CorrectionStart::kSynchronized);
  low.fault_fraction = 0.0001;
  Scenario high = low;
  high.fault_fraction = 0.04;

  const Aggregate low_result = exp::run_replicated(low, 30, 2);
  const Aggregate high_result = exp::run_replicated(high, 30, 2);
  EXPECT_GT(high_result.quiescence_latency.mean(), low_result.quiescence_latency.mean());
  EXPECT_EQ(low_result.not_fully_colored, 0);
  EXPECT_EQ(high_result.not_fully_colored, 0);
}

TEST(PaperClaims, Figure9MessagesDropWithFaultRate) {
  // §4.3: "With more faults, the number of messages drops for all types of
  // collectives" — dead processes are silent.
  const Rank procs = 2048;
  Scenario low = tree_scenario("binomial", procs, proto::CorrectionKind::kChecked,
                               proto::CorrectionStart::kSynchronized);
  low.fault_fraction = 0.0001;
  Scenario high = low;
  high.fault_fraction = 0.04;

  const Aggregate low_result = exp::run_replicated(low, 20, 4);
  const Aggregate high_result = exp::run_replicated(high, 20, 4);
  EXPECT_LT(high_result.messages_per_process.mean(), low_result.messages_per_process.mean());
}

TEST(PaperClaims, Figure10BoundsHoldAcrossTreesAndRates) {
  // Every observed (g_max, correction time) pair lies between the Lemma 3
  // bounds — the content of Fig. 10.
  const Rank procs = 1024;
  const sim::LogP params{2, 1, 1, procs};
  for (const char* tree : {"binomial", "kary:4", "lame:2", "optimal"}) {
    for (double rate : {0.001, 0.02}) {
      Scenario scenario = tree_scenario(tree, procs, proto::CorrectionKind::kChecked,
                                        proto::CorrectionStart::kSynchronized);
      scenario.fault_fraction = rate;
      for (std::uint64_t rep = 0; rep < 10; ++rep) {
        const sim::RunResult result =
            exp::run_once(scenario, support::derive_seed(8, rep));
        const auto gap = result.dissemination_gaps.max_gap;
        EXPECT_GE(result.correction_time(),
                  analysis::checked_correction_latency_lower_bound(params, gap))
            << tree << " rate " << rate;
        EXPECT_LE(result.correction_time(),
                  analysis::checked_correction_latency_upper_bound(params, gap))
            << tree << " rate " << rate;
      }
    }
  }
}

TEST(PaperClaims, ReproducibleEndToEnd) {
  // "All our simulations are fully reproducible as we keep the random
  // generator seed of every experiment."
  Scenario scenario = tree_scenario("lame:2", 512, proto::CorrectionKind::kChecked,
                                    proto::CorrectionStart::kSynchronized);
  scenario.fault_fraction = 0.01;
  const Aggregate a = exp::run_replicated(scenario, 10, 1234);
  const Aggregate b = exp::run_replicated(scenario, 10, 1234);
  EXPECT_EQ(a.quiescence_latency.values(), b.quiescence_latency.values());
  EXPECT_EQ(a.messages_per_process.values(), b.messages_per_process.values());
}

TEST(PaperClaims, BinomialDegradesMoreThanOptimalUnderFaults) {
  // §4.3: "binomial trees have a tendency to degrade more with an increased
  // failure rate" (higher latency variance / larger gaps).
  const Rank procs = 4096;
  Scenario binomial = tree_scenario("binomial", procs, proto::CorrectionKind::kChecked,
                                    proto::CorrectionStart::kSynchronized);
  binomial.fault_fraction = 0.04;
  Scenario optimal = binomial;
  optimal.tree = topo::parse_tree_spec("optimal");

  const Aggregate binomial_result = exp::run_replicated(binomial, 40, 6);
  const Aggregate optimal_result = exp::run_replicated(optimal, 40, 6);
  EXPECT_GE(binomial_result.max_gap.percentile(0.95),
            optimal_result.max_gap.percentile(0.95));
}

}  // namespace
}  // namespace ct

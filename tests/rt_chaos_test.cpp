// Chaos-layer tests (DESIGN.md §4d): ChaosPlan determinism, mid-epoch
// crash termination under both executors, sim/rt fault-model parity,
// deadline-expiry degradation reports, and link-perturbation accounting.
// Registered under the fast `chaos-smoke` ctest label.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "experiment/run_spec.hpp"
#include "protocol/allreduce.hpp"
#include "protocol/tree_broadcast.hpp"
#include "rt/engine.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "topology/factory.hpp"

namespace ct::rt {
namespace {

using topo::Rank;

proto::CorrectionConfig make_correction(proto::CorrectionKind kind,
                                        sim::Time delay = 0) {
  proto::CorrectionConfig config;
  config.kind = kind;
  config.start = proto::CorrectionStart::kOverlapped;
  config.distance = 4;
  config.delay = delay;
  return config;
}

std::vector<Rank> pick_victims(Rank procs, int count, support::Xoshiro256ss& rng) {
  std::vector<Rank> victims;
  while (static_cast<int>(victims.size()) < count) {
    const auto v =
        static_cast<Rank>(1 + rng.below(static_cast<std::uint64_t>(procs) - 1));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

TEST(ChaosPlan, ScheduleIsAPureFunctionOfSeedEpochRankAndSend) {
  ChaosOptions options;
  options.seed = 0xFACEu;
  options.crash_fraction = 0.10;
  options.drop_prob = 0.05;
  options.delay_prob = 0.05;
  options.duplicate_prob = 0.02;
  const ChaosPlan a(options);
  const ChaosPlan b(options);  // independent instance, same options
  for (std::int64_t epoch = 1; epoch <= 4; ++epoch) {
    for (Rank r = 0; r < 64; ++r) {
      const std::int64_t when = a.crash_ns(epoch, r);
      ASSERT_EQ(when, b.crash_ns(epoch, r));
      if (r == 0) {
        EXPECT_EQ(when, -1);  // the root never crashes
      }
      if (when >= 0) {
        EXPECT_GE(when, 1);
        EXPECT_LE(when, options.crash_window_ns);
      }
      for (std::int64_t send = 1; send <= 8; ++send) {
        const auto va = a.classify(epoch, r, send);
        const auto vb = b.classify(epoch, r, send);
        ASSERT_EQ(va.drop, vb.drop);
        ASSERT_EQ(va.duplicate, vb.duplicate);
        ASSERT_EQ(va.delay_ns, vb.delay_ns);
        // Perturbations are mutually exclusive per send.
        EXPECT_LE((va.drop ? 1 : 0) + (va.duplicate ? 1 : 0) +
                      (va.delay_ns > 0 ? 1 : 0),
                  1);
      }
    }
  }

  // A different seed must produce a different schedule somewhere.
  options.seed = 0xFACFu;
  const ChaosPlan c(options);
  bool differs = false;
  for (std::int64_t epoch = 1; epoch <= 4 && !differs; ++epoch) {
    for (Rank r = 1; r < 64 && !differs; ++r) {
      differs = a.crash_ns(epoch, r) != c.crash_ns(epoch, r);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosPlan, EnablementReflectsOptions) {
  EXPECT_FALSE(ChaosPlan{}.enabled());
  ChaosOptions crash_only;
  crash_only.crash_fraction = 0.01;
  EXPECT_TRUE(ChaosPlan(crash_only).crashes_enabled());
  EXPECT_FALSE(ChaosPlan(crash_only).links_enabled());
  ChaosOptions link_only;
  link_only.drop_prob = 0.01;
  EXPECT_FALSE(ChaosPlan(link_only).crashes_enabled());
  EXPECT_TRUE(ChaosPlan(link_only).links_enabled());
  ChaosPlan overrides;
  overrides.kill_at_ns(3, 100);
  EXPECT_TRUE(overrides.crashes_enabled());
  EXPECT_EQ(overrides.crash_ns(1, 3), 100);
  EXPECT_EQ(overrides.crash_ns(7, 3), 100);  // overrides apply every epoch
  EXPECT_EQ(overrides.crash_ns(1, 4), -1);
  ChaosPlan budget;
  budget.kill_after_sends(5, 2);
  EXPECT_TRUE(budget.crashes_enabled());
  EXPECT_EQ(budget.crash_send_budget(5), 2);
  EXPECT_EQ(budget.crash_send_budget(6), -1);
}

// The fault-model parity suite, spec-driven (DESIGN.md §4e): build ONE
// RunSpec string per scenario, execute it under exec=sim and exec=rt-*, and
// require the identical survivor-coloring outcome from the two RunRecords.
// The kill= victims die before processing anything in either executor (sim:
// t = 1, first receive completes at t >= 4 under LogP{2,1,1}; rt:
// crash_ns = 0, checked before the rank's first step), so the coloring
// outcome is the timing-independent coverage of the correction algorithm.
std::string parity_cell(Rank procs, const std::vector<Rank>& victims,
                        proto::CorrectionKind kind) {
  std::string spec = "bcast:binomial:";
  spec += proto::correction_kind_name(kind);
  if (kind == proto::CorrectionKind::kOpportunistic ||
      kind == proto::CorrectionKind::kOptimizedOpportunistic) {
    spec += ":4";
  }
  spec += ":overlapped@P=" + std::to_string(procs);
  spec += ",kill=";
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (i) spec += '+';
    spec += std::to_string(victims[i]);
  }
  spec += ",reps=1,warmup=0";
  return spec;
}

exp::RunRecord run_cell(const std::string& cell, const std::string& executor) {
  return exp::run(exp::parse_run_spec(cell + "," + executor));
}

TEST(ChaosParity, SimAndRtAgreeOnSurvivorColoringUnderMidBroadcastDeaths) {
  const Rank procs = 24;
  const struct {
    proto::CorrectionKind kind;
    bool completes;  // guaranteed to color every survivor -> no timeout
  } kinds[] = {
      {proto::CorrectionKind::kNone, false},
      {proto::CorrectionKind::kOpportunistic, false},
      {proto::CorrectionKind::kOptimizedOpportunistic, false},
      {proto::CorrectionKind::kChecked, true},
      {proto::CorrectionKind::kFailureProof, true},
      {proto::CorrectionKind::kDelayed, true},
  };
  support::Xoshiro256ss rng(0x9A17u);
  for (int scenario = 0; scenario < 6; ++scenario) {
    const std::vector<Rank> victims =
        pick_victims(procs, 1 + scenario % 3, rng);
    for (const auto& k : kinds) {
      const std::string cell = parity_cell(procs, victims, k.kind);
      SCOPED_TRACE(cell);
      const exp::RunRecord expected = run_cell(cell, "exec=sim");
      // A coverage-bounded correction that cannot reach someone never
      // completes the epoch; bound that case by a short deadline. The
      // completion-guaranteed algorithms get none (default 10 s timeout,
      // never used).
      const bool bounded = !k.completes && !expected.uncolored_survivors.empty();
      const exp::RunRecord actual = run_cell(
          cell, bounded ? std::string("deadline-ms=400,exec=rt-sharded:w=4")
                        : std::string("exec=rt-sharded:w=4"));
      EXPECT_EQ(actual.uncolored_survivors, expected.uncolored_survivors);
      EXPECT_EQ(actual.crashed_ranks, expected.crashed_ranks);
      EXPECT_EQ(expected.crashed_ranks, victims);
      EXPECT_EQ(expected.incomplete > 0, !expected.uncolored_survivors.empty());
    }
  }
}

TEST(ChaosParity, LegacyExecutorMatchesSimForCheckedCorrection) {
  const Rank procs = 16;
  support::Xoshiro256ss rng(0xB0B0u);
  for (int scenario = 0; scenario < 3; ++scenario) {
    const std::vector<Rank> victims = pick_victims(procs, 2, rng);
    const std::string cell =
        parity_cell(procs, victims, proto::CorrectionKind::kChecked);
    SCOPED_TRACE(cell);
    const exp::RunRecord expected = run_cell(cell, "exec=sim");
    EXPECT_TRUE(expected.uncolored_survivors.empty());  // checked reaches everyone
    const exp::RunRecord actual = run_cell(cell, "exec=rt-tpr");
    EXPECT_EQ(actual.uncolored_survivors, expected.uncolored_survivors);
    EXPECT_EQ(actual.crashed_ranks, victims);
  }
}

TEST(ChaosEngine, MidEpochCrashesTerminateUnderBothExecutors) {
  const Rank procs = 96;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  for (const Threading threading :
       {Threading::kSharded, Threading::kThreadPerRank}) {
    // Thread-per-rank spawns an OS thread per rank; keep it smaller.
    const Rank p = threading == Threading::kSharded ? procs : Rank{32};
    const topo::Tree& t =
        threading == Threading::kSharded ? tree : topo::make_binomial_interleaved(p);
    EngineOptions options;
    options.threading = threading;
    if (threading == Threading::kSharded) options.workers = 4;
    Engine engine(p, std::vector<char>(static_cast<std::size_t>(p), 0), options);
    ChaosOptions chaos;
    chaos.seed = 0xDEAD;
    chaos.crash_fraction = 0.08;
    chaos.crash_window_ns = 500'000;  // inside dissemination/correction
    engine.set_chaos(ChaosPlan(chaos));
    std::int64_t crashes = 0;
    for (int epoch = 0; epoch < 6; ++epoch) {
      proto::CorrectedTreeBroadcast protocol(
          t, make_correction(proto::CorrectionKind::kChecked));
      const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
      ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
      EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
      crashes += result.crashed_mid_epoch;
      EXPECT_EQ(result.crashed_mid_epoch,
                static_cast<std::int32_t>(result.crashed_ranks.size()));
      EXPECT_EQ(result.rank_state.size(), static_cast<std::size_t>(p));
      for (Rank r : result.crashed_ranks) {
        EXPECT_EQ(result.rank_state[static_cast<std::size_t>(r)], RankEnd::kCrashed);
      }
      // Crashed ranks are reported in rank_completion_ns (they were live at
      // start) but never completed.
      EXPECT_EQ(result.rank_completion_ns.size(), static_cast<std::size_t>(p));
    }
    // With an 8% per-epoch crash rate over 6 epochs someone must have died;
    // the run completing anyway is the point of the countdown credit.
    EXPECT_GT(crashes, 0);
  }
}

TEST(ChaosEngine, SendBudgetCrashKillsRankMidSend) {
  const Rank procs = 32;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosPlan plan;
  const Rank victim = 1;  // an inner tree rank with several children
  plan.kill_after_sends(victim, 1);
  engine.set_chaos(std::move(plan));
  proto::CorrectedTreeBroadcast protocol(
      tree, make_correction(proto::CorrectionKind::kChecked));
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  ASSERT_EQ(result.crashed_ranks, std::vector<Rank>{victim});
  EXPECT_EQ(result.rank_state[static_cast<std::size_t>(victim)], RankEnd::kCrashed);
}

TEST(ChaosEngine, DeadlineExpiryYieldsDegradationReportNotAHang) {
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  options.epoch_deadline = std::chrono::milliseconds(100);
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  // Kill the root's first child before it forwards anything and run with
  // no correction: its subtree can never be colored, so the epoch *must*
  // end at the deadline with an explanation.
  ChaosPlan plan;
  const Rank victim = tree.children(0)[0];
  plan.kill_at_ns(victim, 0);
  engine.set_chaos(std::move(plan));
  const auto start = Clock::now();
  proto::CorrectedTreeBroadcast protocol(
      tree, make_correction(proto::CorrectionKind::kNone));
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
  const auto elapsed = Clock::now() - start;
  EXPECT_TRUE(result.timed_out);
  EXPECT_TRUE(result.degraded());
  EXPECT_LT(elapsed, std::chrono::seconds(10));  // deadline, not the timeout
  EXPECT_GT(result.uncolored_live, 0);
  EXPECT_EQ(result.uncolored_survivors.size(),
            static_cast<std::size_t>(result.uncolored_live));
  EXPECT_EQ(result.crashed_ranks, std::vector<Rank>{victim});
  // The report's gap structure covers the ring: victim + uncolored
  // survivors are the holes.
  EXPECT_EQ(result.coloring_gaps.uncolored,
            static_cast<std::int64_t>(result.uncolored_live) + 1);
  EXPECT_GT(result.coloring_gaps.gap_count, 0);
  for (Rank r : result.uncolored_survivors) {
    EXPECT_EQ(result.rank_state[static_cast<std::size_t>(r)], RankEnd::kUncolored);
  }
}

TEST(ChaosEngine, DropsAreRecoveredByCheckedCorrection) {
  const Rank procs = 128;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosOptions chaos;
  chaos.seed = 0x0D0Du;
  chaos.drop_prob = 0.05;
  engine.set_chaos(ChaosPlan(chaos));
  std::int64_t dropped = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kChecked));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    dropped += result.messages_dropped;
  }
  EXPECT_GT(dropped, 0);  // 5% of thousands of sends
}

TEST(ChaosEngine, DelayAndDuplicateAccounting) {
  const Rank procs = 64;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  ChaosOptions chaos;
  chaos.seed = 0xD1Ceu;
  chaos.delay_prob = 0.10;
  chaos.delay_ns = 100'000;
  chaos.delay_jitter_ns = 50'000;
  chaos.duplicate_prob = 0.10;
  engine.set_chaos(ChaosPlan(chaos));
  std::int64_t delayed = 0;
  std::int64_t duplicated = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    proto::CorrectedTreeBroadcast protocol(
        tree, make_correction(proto::CorrectionKind::kChecked));
    const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
    ASSERT_FALSE(result.timed_out) << "epoch " << epoch;
    // Duplicates and delays must be harmless to the outcome: protocols
    // already tolerate re-delivery and reordering.
    EXPECT_EQ(result.uncolored_live, 0) << "epoch " << epoch;
    delayed += result.messages_delayed;
    duplicated += result.messages_duplicated;
  }
  EXPECT_GT(delayed, 0);
  EXPECT_GT(duplicated, 0);
}

// --- survivor agreement (PR9): allreduce under mid-epoch kills --------------
// The recovery suite's correctness anchor: whatever subset of contributions
// a killed gather loses, every *survivor* must end the epoch holding one
// and the same reduction value. Sim asserts value-level agreement from the
// per-rank detail (rank_data); the runtime asserts it through the coloring
// contract (colored ⇔ holds the result broadcast) plus the root's result,
// which is deterministic under rt because kill= victims die before their
// first step and so contribute nothing.

std::string allreduce_cell(Rank procs, const std::vector<Rank>& victims) {
  std::string spec = "allreduce:binomial:checked:overlapped@P=" + std::to_string(procs);
  spec += ",kill=";
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (i) spec += '+';
    spec += std::to_string(victims[i]);
  }
  spec += ",reps=1,warmup=0";
  return spec;
}

TEST(SurvivorAgreement, SimSurvivorsHoldOneReductionValueUnderMidGatherKills) {
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::LogP params;
  params.P = procs;
  std::vector<std::int64_t> values(static_cast<std::size_t>(procs));
  for (Rank r = 0; r < procs; ++r) values[static_cast<std::size_t>(r)] = r % 97;

  support::Xoshiro256ss rng(0xA11Du);
  for (int scenario = 0; scenario < 4; ++scenario) {
    std::vector<Rank> victims = pick_victims(procs, 2, rng);
    if (scenario % 2 == 0) victims.back() = procs - 1;  // lose the max holder
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    SCOPED_TRACE(allreduce_cell(procs, victims));

    sim::FaultSet faults = sim::FaultSet::none(procs);
    for (const Rank v : victims) faults.kill_at(v, 1);
    proto::AllReduceConfig config;
    config.reduce.distance = 4;  // gather guarantee needs failures <= distance
    config.correction = make_correction(proto::CorrectionKind::kChecked);
    proto::CorrectedAllReduce protocol(tree, params, values, config);
    sim::Simulator simulator(params, &faults);
    sim::RunOptions options;
    options.keep_per_rank_detail = true;
    const sim::RunResult result = simulator.run(protocol, options);

    ASSERT_TRUE(protocol.reduction_done());
    std::int64_t survivors_checked = 0;
    for (Rank r = 0; r < procs; ++r) {
      if (!faults.always_alive(r)) continue;
      ASSERT_NE(result.colored_at[static_cast<std::size_t>(r)], sim::kTimeNever)
          << "survivor " << r << " never received the result";
      EXPECT_EQ(result.rank_data[static_cast<std::size_t>(r)], protocol.result())
          << "survivor " << r << " disagrees with the root";
      ++survivors_checked;
    }
    EXPECT_EQ(survivors_checked,
              procs - static_cast<Rank>(victims.size()));
  }
}

TEST(SurvivorAgreement, RtSurvivorsAgreeOnTheSurvivorOnlyReduction) {
  const Rank procs = 24;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  sim::LogP params;
  params.P = procs;
  // The gather forwards on LogP-timetable deadlines; under wall clock a
  // tick is a microsecond, so widen the timetable to give live partials
  // real slack. The value-exact assertion still has to stay one-sided
  // (result <= survivor max): a slow live contribution can legitimately
  // miss its parent's deadline on a loaded machine, which is the paper's
  // deadline-driven semantics, not a bug. Sim pins exact agreement above.
  params.L = 200;
  params.o = 50;
  params.g = 50;
  std::vector<std::int64_t> values(static_cast<std::size_t>(procs));
  for (Rank r = 0; r < procs; ++r) values[static_cast<std::size_t>(r)] = r % 97;

  support::Xoshiro256ss rng(0xA22Du);
  for (int scenario = 0; scenario < 3; ++scenario) {
    std::vector<Rank> victims = pick_victims(procs, 2, rng);
    victims.back() = procs - 1;  // always lose the max contribution
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    SCOPED_TRACE(allreduce_cell(procs, victims));

    // kill= victims die before their first step, so nothing they hold can
    // enter the reduction: the agreed value is bounded by the survivor max.
    std::int64_t expected = 0;
    for (Rank r = 0; r < procs; ++r) {
      if (std::find(victims.begin(), victims.end(), r) == victims.end()) {
        expected = std::max(expected, values[static_cast<std::size_t>(r)]);
      }
    }
    ASSERT_LT(expected, procs - 1);  // the lost max is really observable

    for (const Threading threading :
         {Threading::kSharded, Threading::kThreadPerRank}) {
      SCOPED_TRACE(threading == Threading::kSharded ? "sharded" : "tpr");
      EngineOptions options;
      options.threading = threading;
      if (threading == Threading::kSharded) options.workers = 4;
      Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                    options);
      ChaosPlan plan;
      for (const Rank v : victims) plan.kill_at_ns(v, 0);
      engine.set_chaos(std::move(plan));

      proto::AllReduceConfig config;
      config.reduce.distance = 4;  // gather guarantee needs failures <= distance
      config.correction = make_correction(proto::CorrectionKind::kChecked);
      proto::CorrectedAllReduce protocol(tree, params, values, config);
      const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
      ASSERT_FALSE(result.timed_out);
      // Every survivor colored = every survivor holds the result broadcast,
      // i.e. all survivors agree on one reduction value.
      EXPECT_EQ(result.uncolored_live, 0);
      EXPECT_EQ(result.crashed_ranks, victims);
      EXPECT_TRUE(protocol.reduction_done());
      EXPECT_GE(protocol.result(), 0);
      EXPECT_LE(protocol.result(), expected);  // dead values never resurrect
    }
  }
}

TEST(SurvivorAgreement, SpecDrivenAllreduceCellsAgreeAcrossSubstrates) {
  // The same allreduce cell under exec=sim and both rt executors: identical
  // survivor-coloring outcome, nobody left without the result.
  const Rank procs = 24;
  support::Xoshiro256ss rng(0xA33Du);
  for (int scenario = 0; scenario < 3; ++scenario) {
    const std::vector<Rank> victims = pick_victims(procs, 1 + scenario, rng);
    const std::string cell = allreduce_cell(procs, victims);
    SCOPED_TRACE(cell);
    const exp::RunRecord expected = run_cell(cell, "exec=sim");
    EXPECT_TRUE(expected.uncolored_survivors.empty());  // checked reaches all
    EXPECT_EQ(expected.incomplete, 0);
    for (const char* executor : {"exec=rt-sharded:w=4", "exec=rt-tpr"}) {
      const exp::RunRecord actual = run_cell(cell, executor);
      EXPECT_EQ(actual.uncolored_survivors, expected.uncolored_survivors);
      EXPECT_EQ(actual.crashed_ranks, victims);
      EXPECT_EQ(actual.incomplete, 0);
      EXPECT_EQ(actual.timeouts, 0);
    }
  }
}

TEST(ChaosEngine, DisabledPlanLeavesResultsCleanAndDeterministic) {
  const Rank procs = 48;
  const topo::Tree tree = topo::make_binomial_interleaved(procs);
  EngineOptions options;
  options.workers = 4;
  Engine engine(procs, std::vector<char>(static_cast<std::size_t>(procs), 0),
                options);
  engine.set_chaos(ChaosPlan{});  // disabled: hooks must be no-ops
  proto::CorrectedTreeBroadcast protocol(
      tree, make_correction(proto::CorrectionKind::kChecked));
  const EpochResult result = engine.run_epoch(protocol, std::chrono::seconds(60));
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.uncolored_live, 0);
  EXPECT_EQ(result.crashed_mid_epoch, 0);
  EXPECT_EQ(result.messages_dropped, 0);
  EXPECT_EQ(result.messages_delayed, 0);
  EXPECT_EQ(result.messages_duplicated, 0);
  EXPECT_TRUE(result.crashed_ranks.empty());
  EXPECT_TRUE(result.uncolored_survivors.empty());
  EXPECT_FALSE(result.degraded());
}

}  // namespace
}  // namespace ct::rt

// perf-smoke suite: the cheap canaries for the PR6/PR7 fast paths, sized
// to run inside the sanitize/tsan label sweeps. One tiny sharded cell
// proves the SPSC mesh still moves real protocol traffic end-to-end; the
// batched same-tick dispatch (drain_tick) is checked to be observationally
// identical to one-at-a-time pop_into on both simulator queues — including
// handlers that push same-tick work mid-drain; the PR7 SoA key lane is
// checked against an AoS reference heap ordered by Event::operator> (the
// reference total order the 16-byte EventKey must reproduce); full runs are
// compared bit-for-bit across the two queue engines; and the rt mesh and
// locked-inbox cross-shard backends are held to identical outcomes under
// kill= crashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "experiment/run_spec.hpp"
#include "experiment/runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace ct::sim {
namespace {

using detail::CalendarQueue;
using detail::Event;
using detail::EventHeapQueue;
using detail::EventKind;
using detail::kNumLanes;

TEST(PerfSmoke, ShardedMeshCellStaysHealthy) {
  const exp::RunRecord record = exp::run(exp::parse_run_spec(
      "bcast:binomial:checked:overlapped@P=128,reps=3,warmup=1,"
      "exec=rt-sharded:w=4"));
  EXPECT_EQ(record.runs, 3);
  EXPECT_EQ(record.workers, 4);
  EXPECT_EQ(record.incomplete, 0);
  EXPECT_EQ(record.timeouts, 0);
  EXPECT_GT(record.messages_per_sec, 0.0);
  EXPECT_GT(record.latency_p50, 0.0);
}

// --- batched dispatch vs one-at-a-time: the ordering oracle ---

struct Dispatched {
  Time time;
  std::uint32_t seq;
  EventKind kind;
  std::int64_t payload;
  friend bool operator==(const Dispatched&, const Dispatched&) = default;
};

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Self-feeding event script: every dispatched event deterministically
// spawns 0-2 follow-ups (a pure function of the event, NOT of queue
// internals) at offsets that cover same-tick same-lane, same-tick
// lower-lane (the mid-drain preemption case), near-future ring slots, and
// far-future overflow pushes. If two queue drivers dispatch in the same
// order they generate the same stream, so comparing the dispatch logs is a
// complete ordering check.
template <class Queue>
std::vector<Dispatched> run_script(Queue& queue, bool batched) {
  constexpr int kBudget = 20000;
  std::uint32_t next_seq = 0;
  int produced = 0;
  auto push_event = [&](Time t, EventKind kind, std::int64_t payload) {
    Event e;
    e.time = t;
    e.seq = next_seq++;
    e.kind = kind;
    e.msg.src = 0;
    e.msg.dst = 1;
    e.msg.payload = payload;
    queue.push(e);
    ++produced;
  };
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t h = mix(static_cast<std::uint64_t>(i) + 17);
    push_event(static_cast<Time>(h % 16),
               static_cast<EventKind>(h / 7 % kNumLanes), i);
  }
  std::vector<Dispatched> out;
  auto sink = [&](const Event& e) {
    out.push_back({e.time, e.seq, e.kind, e.msg.payload});
    const std::uint64_t h =
        mix((static_cast<std::uint64_t>(e.seq) << 20) ^
            static_cast<std::uint64_t>(e.time));
    const int children = static_cast<int>(h % 3);
    for (int c = 0; c < children && produced < kBudget; ++c) {
      const std::uint64_t hc = mix(h + static_cast<std::uint64_t>(c) + 1);
      static constexpr Time kOffsets[] = {0, 0, 0, 1, 2, 5, 31, 700};
      push_event(e.time + kOffsets[hc % 8],
                 static_cast<EventKind>(hc / 11 % kNumLanes),
                 static_cast<std::int64_t>(hc % 1000));
    }
  };
  Event single;
  while (!queue.empty()) {
    if (batched && queue.drain_tick(sink) != 0) continue;
    queue.pop_into(single);
    sink(single);
  }
  return out;
}

// AoS reference queue: the pre-PR7 layout distilled — whole 48-byte Events
// in a std::priority_queue ordered by Event::operator>, the documented
// reference total order. The SoA queues must dispatch identically or the
// packed (time, ord) key lane broke the order.
struct AosRefQueue {
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> pq;
  void push(const Event& e) { pq.push(e); }
  bool empty() const { return pq.empty(); }
  void pop_into(Event& out) {
    out = pq.top();
    pq.pop();
  }
  template <class Sink>
  std::int64_t drain_tick(Sink&&) {
    return 0;  // no batched path; run_script only calls this when batched
  }
};

TEST(PerfSmoke, SoAQueuesMatchAosReferenceOrder) {
  AosRefQueue aos;
  const std::vector<Dispatched> expected = run_script(aos, false);
  ASSERT_GT(expected.size(), 1000u);

  EventHeapQueue soa_heap;
  EXPECT_EQ(run_script(soa_heap, false), expected);

  CalendarQueue soa_calendar;
  soa_calendar.reset(64);  // < the 700-tick offset: overflow tier engaged
  EXPECT_EQ(run_script(soa_calendar, false), expected);
}

TEST(PerfSmoke, BatchedDispatchMatchesPopOrderOnBothQueues) {
  // Reference: the binary heap popped one event at a time — the (time,
  // lane, seq) total order by construction.
  EventHeapQueue heap_single;
  const std::vector<Dispatched> expected = run_script(heap_single, false);
  ASSERT_GT(expected.size(), 1000u);

  EventHeapQueue heap_batched;
  EXPECT_EQ(run_script(heap_batched, true), expected);

  // horizon=64 < the 700-tick offset above, so the overflow tier (and
  // drain_tick's overflow-due fallback to pop_into) is genuinely hit.
  CalendarQueue calendar_single;
  calendar_single.reset(64);
  EXPECT_EQ(run_script(calendar_single, false), expected);

  CalendarQueue calendar_batched;
  calendar_batched.reset(64);
  EXPECT_EQ(run_script(calendar_batched, true), expected);
}

TEST(PerfSmoke, SimSweepRepeatsBitIdenticalUnderBatchedDispatch) {
  const char* kCell =
      "bcast:binomial:checked:sync@P=512,f=0.02,reps=40,seed=1234,exec=sim";
  const exp::RunRecord a = exp::run(exp::parse_run_spec(kCell));
  const exp::RunRecord b = exp::run(exp::parse_run_spec(kCell));
  // Bit-identical, not approximately equal — the PR6 sweep gate.
  EXPECT_EQ(a.latency_mean, b.latency_mean);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.messages_per_process, b.messages_per_process);
  EXPECT_EQ(a.incomplete, b.incomplete);
  EXPECT_GT(a.latency_mean, 0.0);
}

TEST(PerfSmoke, SweepDigestBitIdenticalAcrossQueueEngines) {
  // Whole-simulation digest of the SoA rewrite: every replication of a
  // faulty sweep must produce bit-identical results on the calendar queue
  // and the binary-heap fallback — two independent SoA implementations of
  // the same total order, so a layout bug in either shows as a digest split.
  const exp::Scenario scenario =
      exp::parse_run_spec("bcast:binomial:checked:sync@P=512,f=0.02,exec=sim")
          .to_scenario();
  RunOptions calendar;
  calendar.queue = QueueKind::kCalendar;
  RunOptions heap;
  heap.queue = QueueKind::kBinaryHeap;
  for (std::uint64_t rep = 0; rep < 16; ++rep) {
    const std::uint64_t seed = support::derive_seed(1234, rep);
    const RunResult a = exp::run_once(scenario, seed, calendar);
    const RunResult b = exp::run_once(scenario, seed, heap);
    EXPECT_EQ(a.quiescence_latency, b.quiescence_latency) << "rep " << rep;
    EXPECT_EQ(a.coloring_latency, b.coloring_latency) << "rep " << rep;
    EXPECT_EQ(a.total_messages, b.total_messages) << "rep " << rep;
    EXPECT_EQ(a.events_processed, b.events_processed) << "rep " << rep;
    EXPECT_EQ(a.uncolored_live, b.uncolored_live) << "rep " << rep;
  }
}

TEST(PerfSmoke, MeshAndInboxAgreeUnderKillCrashes) {
  // The copy-free delivery path (in-place outbox refs + consume_all into
  // the fifos) must not change outcomes on either cross-shard backend, and
  // the two backends must agree with each other — including when kill=
  // victims crash mid-epoch and their in-flight traffic is discarded.
  const char* kBase =
      "bcast:binomial:checked:overlapped@P=128,kill=3+17+64,reps=2,warmup=1,"
      "deadline-ms=10000,exec=rt-sharded:w=4";
  const exp::RunRecord mesh = exp::run(exp::parse_run_spec(kBase));
  const exp::RunRecord inbox =
      exp::run(exp::parse_run_spec(std::string(kBase) + ":inbox"));
  const std::vector<topo::Rank> killed{3, 17, 64};
  EXPECT_EQ(mesh.crashed_ranks, killed);
  EXPECT_EQ(inbox.crashed_ranks, killed);
  EXPECT_EQ(mesh.uncolored_survivors, inbox.uncolored_survivors);
  EXPECT_EQ(mesh.incomplete, inbox.incomplete);
  EXPECT_EQ(mesh.timeouts, 0);
  EXPECT_EQ(inbox.timeouts, 0);
  EXPECT_GT(mesh.messages_per_sec, 0.0);
}

}  // namespace
}  // namespace ct::sim

// perf-smoke suite: the cheap canaries for the two PR6 fast paths, sized
// to run inside the sanitize/tsan label sweeps. One tiny sharded cell
// proves the SPSC mesh still moves real protocol traffic end-to-end, and
// the batched same-tick dispatch (drain_tick) is checked to be
// observationally identical to one-at-a-time pop_into on both simulator
// queues — including handlers that push same-tick work mid-drain — plus a
// spec-level repeat-run determinism check.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "experiment/run_spec.hpp"
#include "sim/event_queue.hpp"

namespace ct::sim {
namespace {

using detail::CalendarQueue;
using detail::Event;
using detail::EventHeapQueue;
using detail::EventKind;
using detail::kNumLanes;

TEST(PerfSmoke, ShardedMeshCellStaysHealthy) {
  const exp::RunRecord record = exp::run(exp::parse_run_spec(
      "bcast:binomial:checked:overlapped@P=128,reps=3,warmup=1,"
      "exec=rt-sharded:w=4"));
  EXPECT_EQ(record.runs, 3);
  EXPECT_EQ(record.workers, 4);
  EXPECT_EQ(record.incomplete, 0);
  EXPECT_EQ(record.timeouts, 0);
  EXPECT_GT(record.messages_per_sec, 0.0);
  EXPECT_GT(record.latency_p50, 0.0);
}

// --- batched dispatch vs one-at-a-time: the ordering oracle ---

struct Dispatched {
  Time time;
  std::uint32_t seq;
  EventKind kind;
  std::int64_t payload;
  friend bool operator==(const Dispatched&, const Dispatched&) = default;
};

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Self-feeding event script: every dispatched event deterministically
// spawns 0-2 follow-ups (a pure function of the event, NOT of queue
// internals) at offsets that cover same-tick same-lane, same-tick
// lower-lane (the mid-drain preemption case), near-future ring slots, and
// far-future overflow pushes. If two queue drivers dispatch in the same
// order they generate the same stream, so comparing the dispatch logs is a
// complete ordering check.
template <class Queue>
std::vector<Dispatched> run_script(Queue& queue, bool batched) {
  constexpr int kBudget = 20000;
  std::uint32_t next_seq = 0;
  int produced = 0;
  auto push_event = [&](Time t, EventKind kind, std::int64_t payload) {
    Event e;
    e.time = t;
    e.seq = next_seq++;
    e.kind = kind;
    e.msg.src = 0;
    e.msg.dst = 1;
    e.msg.payload = payload;
    queue.push(e);
    ++produced;
  };
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t h = mix(static_cast<std::uint64_t>(i) + 17);
    push_event(static_cast<Time>(h % 16),
               static_cast<EventKind>(h / 7 % kNumLanes), i);
  }
  std::vector<Dispatched> out;
  auto sink = [&](const Event& e) {
    out.push_back({e.time, e.seq, e.kind, e.msg.payload});
    const std::uint64_t h =
        mix((static_cast<std::uint64_t>(e.seq) << 20) ^
            static_cast<std::uint64_t>(e.time));
    const int children = static_cast<int>(h % 3);
    for (int c = 0; c < children && produced < kBudget; ++c) {
      const std::uint64_t hc = mix(h + static_cast<std::uint64_t>(c) + 1);
      static constexpr Time kOffsets[] = {0, 0, 0, 1, 2, 5, 31, 700};
      push_event(e.time + kOffsets[hc % 8],
                 static_cast<EventKind>(hc / 11 % kNumLanes),
                 static_cast<std::int64_t>(hc % 1000));
    }
  };
  Event single;
  while (!queue.empty()) {
    if (batched && queue.drain_tick(sink) != 0) continue;
    queue.pop_into(single);
    sink(single);
  }
  return out;
}

TEST(PerfSmoke, BatchedDispatchMatchesPopOrderOnBothQueues) {
  // Reference: the binary heap popped one event at a time — the (time,
  // lane, seq) total order by construction.
  EventHeapQueue heap_single;
  const std::vector<Dispatched> expected = run_script(heap_single, false);
  ASSERT_GT(expected.size(), 1000u);

  EventHeapQueue heap_batched;
  EXPECT_EQ(run_script(heap_batched, true), expected);

  // horizon=64 < the 700-tick offset above, so the overflow tier (and
  // drain_tick's overflow-due fallback to pop_into) is genuinely hit.
  CalendarQueue calendar_single;
  calendar_single.reset(64);
  EXPECT_EQ(run_script(calendar_single, false), expected);

  CalendarQueue calendar_batched;
  calendar_batched.reset(64);
  EXPECT_EQ(run_script(calendar_batched, true), expected);
}

TEST(PerfSmoke, SimSweepRepeatsBitIdenticalUnderBatchedDispatch) {
  const char* kCell =
      "bcast:binomial:checked:sync@P=512,f=0.02,reps=40,seed=1234,exec=sim";
  const exp::RunRecord a = exp::run(exp::parse_run_spec(kCell));
  const exp::RunRecord b = exp::run(exp::parse_run_spec(kCell));
  // Bit-identical, not approximately equal — the PR6 sweep gate.
  EXPECT_EQ(a.latency_mean, b.latency_mean);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.messages_per_process, b.messages_per_process);
  EXPECT_EQ(a.incomplete, b.incomplete);
  EXPECT_GT(a.latency_mean, 0.0);
}

}  // namespace
}  // namespace ct::sim
